"""Reproduction-band tests: our metrics vs the paper's Tables 3 and 4.

These tests assert that every reproduced metric lands within a tolerance
band of the paper's published value — the *shape* contract of the
reproduction.  Bands are deliberately generous for quantities that depend on
unknowable trace internals (per-message packet mixes), and tight for
quantities the synthetic patterns pin exactly.

Only configurations <= 300 ranks run here (speed); the benchmark suite
covers the full grid.
"""

import math

import pytest

from repro.analysis.tables import build_table3_row
from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.metrics.dimensionality import locality_by_dimension
from repro.metrics.locality import rank_distance
from repro.metrics.peers import peers
from repro.metrics.selectivity import selectivity

# (app, ranks): paper's peers, rank distance (90%), selectivity (90%)
PAPER_MPI_LEVEL = {
    ("AMG", 8): (7, 3.7, 2.8),
    ("AMG", 27): (26, 8.7, 4.2),
    ("AMG", 216): (127, 35.8, 5.2),
    ("AMR_Miniapp", 64): (39, 27.1, 8.3),
    ("Boxlib_CNS", 64): (63, 35.1, 5.7),
    ("Boxlib_CNS", 256): (255, 109.2, 5.4),
    ("Boxlib_MultiGrid_C", 64): (26, 27.1, 4.4),
    ("Boxlib_MultiGrid_C", 256): (26, 54.3, 4.4),
    ("MOCFE", 64): (12, 51.3, 8.9),
    ("MOCFE", 256): (20, 195.3, 14.0),
    ("Nekbone", 64): (27, 15.8, 4.8),
    ("Nekbone", 256): (15, 28.4, 5.4),
    ("CrystalRouter", 10): (4, 6.4, 3.0),
    ("CrystalRouter", 100): (8, 44.3, 5.8),
    ("LULESH", 64): (26, 15.7, 4.5),
    ("FillBoundary", 125): (26, 42.3, 4.8),
    ("MiniFE", 18): (8, 7.4, 3.4),
    ("MiniFE", 144): (22, 31.5, 4.6),
    ("MultiGrid_C", 125): (22, 59.7, 5.5),
    ("PARTISN", 168): (167, 13.8, 3.4),
    ("SNAP", 168): (48, 139.1, 9.8),
}


def p2p_matrix(app, ranks):
    return matrix_from_trace(generate_trace(app, ranks), include_collectives=False)


class TestMPILevelBands:
    @pytest.mark.parametrize("app,ranks", sorted(PAPER_MPI_LEVEL), ids=str)
    def test_peers_band(self, app, ranks):
        expected = PAPER_MPI_LEVEL[(app, ranks)][0]
        got = peers(p2p_matrix(app, ranks))
        # within a factor of 2.2 (exact for the structurally pinned patterns)
        assert expected / 2.2 <= got <= expected * 2.2, (got, expected)

    @pytest.mark.parametrize("app,ranks", sorted(PAPER_MPI_LEVEL), ids=str)
    def test_rank_distance_band(self, app, ranks):
        expected = PAPER_MPI_LEVEL[(app, ranks)][1]
        got = rank_distance(p2p_matrix(app, ranks))
        assert expected / 2.0 <= got <= expected * 2.0, (got, expected)

    @pytest.mark.parametrize("app,ranks", sorted(PAPER_MPI_LEVEL), ids=str)
    def test_selectivity_band(self, app, ranks):
        expected = PAPER_MPI_LEVEL[(app, ranks)][2]
        got = selectivity(p2p_matrix(app, ranks))
        assert expected / 2.0 <= got <= expected * 2.0, (got, expected)

    @pytest.mark.parametrize(
        "app,ranks",
        [("AMG", 8), ("AMG", 216), ("LULESH", 64), ("PARTISN", 168)],
        ids=str,
    )
    def test_pinned_distances_are_close(self, app, ranks):
        """The structurally pinned configs land within 15% of the paper."""
        expected = PAPER_MPI_LEVEL[(app, ranks)][1]
        got = rank_distance(p2p_matrix(app, ranks))
        assert got == pytest.approx(expected, rel=0.15)

    def test_all_collective_apps_report_na(self):
        for app, ranks in (("BigFFT", 9), ("CMC_2D", 64)):
            m = p2p_matrix(app, ranks)
            assert peers(m) == 0
            assert math.isnan(rank_distance(m))
            assert math.isnan(selectivity(m))


class TestTable4Bands:
    def test_amg_is_3d(self):
        loc = locality_by_dimension(p2p_matrix("AMG", 216))
        assert loc[3] == 1.0  # paper: 100%
        assert loc[1] < 0.10  # paper: 3%

    def test_lulesh_is_3d(self):
        loc = locality_by_dimension(p2p_matrix("LULESH", 64))
        assert loc[3] == 1.0
        assert 0.02 <= loc[1] <= 0.15  # paper: 6%

    def test_partisn_is_2d(self):
        loc = locality_by_dimension(p2p_matrix("PARTISN", 168))
        assert loc[2] == 1.0  # paper: 100%
        assert loc[3] < 1.0  # paper: 22%
        assert loc[1] < 0.15  # paper: 7%

    def test_cns_has_no_dimensional_structure(self):
        loc = locality_by_dimension(p2p_matrix("Boxlib_CNS", 64))
        assert all(v < 0.5 for v in loc.values())  # paper: 3/13/21%
        assert loc[1] <= loc[2] <= loc[3]  # improves only via diameter


# (app, ranks): paper avg hops for torus / fat tree / dragonfly.
# Bands are wide for stencil apps (packet-mix sensitivity, see
# EXPERIMENTS.md) and tight for collective/scattered apps.
PAPER_AVG_HOPS = {
    ("AMG", 8): (1.57, 2.00, 2.83, 0.15),
    ("AMG", 27): (1.74, 2.00, 4.01, 0.10),
    ("BigFFT", 9): (1.56, 1.78, 2.91, 0.03),
    ("BigFFT", 100): (3.40, 3.52, 4.36, 0.03),
    ("CMC_2D", 64): (3.00, 3.28, 4.25, 0.03),
    ("MOCFE", 64): (2.96, 3.28, 4.24, 0.05),
    ("Boxlib_CNS", 64): (2.99, 3.23, 4.23, 0.10),
    ("AMR_Miniapp", 64): (2.93, 3.20, 4.19, 0.10),
    ("PARTISN", 168): (2.70, 3.04, 3.88, 0.25),
    ("SNAP", 168): (3.85, 3.74, 4.41, 0.25),
}


class TestTopologyBands:
    @pytest.mark.parametrize("app,ranks", sorted(PAPER_AVG_HOPS), ids=str)
    def test_avg_hops(self, app, ranks):
        torus_e, ft_e, df_e, tol = PAPER_AVG_HOPS[(app, ranks)]
        row = build_table3_row(generate_trace(app, ranks))
        got = {
            "torus3d": row.network["torus3d"].avg_hops,
            "fattree": row.network["fattree"].avg_hops,
            "dragonfly": row.network["dragonfly"].avg_hops,
        }
        assert got["torus3d"] == pytest.approx(torus_e, rel=tol)
        assert got["fattree"] == pytest.approx(ft_e, rel=tol)
        assert got["dragonfly"] == pytest.approx(df_e, rel=tol)

    def test_dragonfly_never_best_for_small_stencils(self):
        """Paper: the dragonfly has the highest hop average almost always."""
        for app, ranks in (("AMG", 27), ("LULESH", 64), ("MiniFE", 144)):
            row = build_table3_row(generate_trace(app, ranks))
            hops = {k: n.avg_hops for k, n in row.network.items()}
            assert max(hops, key=hops.get) == "dragonfly", (app, ranks)

    def test_torus_best_for_small_3d_apps(self):
        for app, ranks in (("AMG", 8), ("AMG", 27), ("LULESH", 64)):
            row = build_table3_row(generate_trace(app, ranks))
            hops = {k: n.avg_hops for k, n in row.network.items()}
            assert min(hops, key=hops.get) == "torus3d", (app, ranks)

    def test_utilization_below_one_percent_for_non_fft(self):
        for app, ranks in (("AMG", 27), ("LULESH", 64), ("CMC_2D", 64)):
            row = build_table3_row(generate_trace(app, ranks))
            for net in row.network.values():
                assert net.utilization < 0.01, (app, ranks)

    def test_bigfft_exceeds_one_percent(self):
        row = build_table3_row(generate_trace("BigFFT", 100))
        assert all(net.utilization > 0.01 for net in row.network.values())
