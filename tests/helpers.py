"""Test helper constructors (imported by test modules)."""

from __future__ import annotations

from repro.comm.matrix import CommMatrix, CommMatrixBuilder
from repro.core.trace import Trace, TraceMetadata


def make_trace(num_ranks: int = 4, app: str = "test", time_s: float = 1.0) -> Trace:
    """An empty trace over a world communicator."""
    return Trace(TraceMetadata(app=app, num_ranks=num_ranks, execution_time=time_s))


def make_matrix(num_ranks: int, pairs: list[tuple[int, int, int]]) -> CommMatrix:
    """A matrix from (src, dst, nbytes) triples, one message per pair."""
    builder = CommMatrixBuilder(num_ranks)
    for src, dst, nbytes in pairs:
        builder.add_message(src, dst, nbytes)
    return builder.finalize()
