"""Tests for structured export and the parameter-sweep harness."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    curve_records,
    figure1_records,
    figure5_records,
    rows_to_csv,
    rows_to_json,
    table1_records,
    table2_records,
    table3_records,
    table4_records,
)
from repro.analysis.figures import build_figure1, build_figure4, build_figure5
from repro.analysis.sweep import SweepSpec, run_sweep
from repro.analysis.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)


class TestSerializers:
    def test_csv_roundtrip(self):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(records)
        back = list(csv.DictReader(io.StringIO(text)))
        assert back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_nan_becomes_null(self):
        text = rows_to_json([{"v": float("nan")}])
        assert json.loads(text) == [{"v": None}]

    def test_nan_becomes_empty_csv_cell(self):
        text = rows_to_csv([{"v": float("nan"), "w": 1}])
        reader = csv.DictReader(io.StringIO(text))
        row = next(reader)
        assert row["v"] == "" and row["w"] == "1"


class TestTableRecords:
    def test_table1(self):
        records = table1_records(build_table1(max_ranks=30))
        assert all(r["volume_mb"] > 0 for r in records)
        assert {"app", "ranks", "p2p_percent"} <= set(records[0])

    def test_table2(self):
        records = table2_records(build_table2())
        assert len(records) == 17
        assert records[-1]["torus_nodes"] == 1728

    def test_table3_na_handling(self):
        records = table3_records(build_table3(max_ranks=30))
        bigfft = [r for r in records if r["app"] == "BigFFT"]
        assert bigfft and bigfft[0]["peers"] is None
        assert bigfft[0]["torus3d_avg_hops"] > 0
        # serializes cleanly despite the Nones
        assert json.loads(rows_to_json(records))

    def test_table4(self):
        records = table4_records(build_table4(max_ranks=70))
        for r in records:
            assert 0 <= r["locality_3d_percent"] <= 100


class TestFigureRecords:
    def test_figure1(self):
        records = figure1_records(build_figure1("LULESH", 64, 0))
        assert len(records) == 7
        assert records[-1]["cumulative_share"] == pytest.approx(1.0)

    def test_curves(self):
        records = curve_records(build_figure4("CrystalRouter"))
        assert {r["ranks"] for r in records} == {10, 100, 1000}
        assert all(0 < r["cumulative_share"] <= 1.0 for r in records)

    def test_figure5(self):
        records = figure5_records(build_figure5(min_ranks=500, max_ranks=600))
        assert all(r["ranks"] == 512 for r in records)
        baselines = [r for r in records if r["cores_per_node"] == 1]
        assert all(r["relative_traffic"] == 1.0 for r in baselines)


class TestSweep:
    def test_point_count(self):
        spec = SweepSpec(
            apps=(("MiniFE", 18), ("CrystalRouter", 10)),
            topologies=("torus3d", "fattree"),
            mappings=("consecutive",),
            payloads=(1024, 4096),
        )
        assert spec.num_points == 8
        records = run_sweep(spec)
        assert len(records) == 8

    def test_records_complete(self):
        records = run_sweep(SweepSpec(apps=(("MiniFE", 18),)))
        for r in records:
            assert r["packet_hops"] > 0
            assert r["used_links"] > 0
            assert r["avg_hops"] > 0

    def test_payload_axis_changes_packet_hops(self):
        records = run_sweep(
            SweepSpec(
                apps=(("LULESH", 64),),
                topologies=("torus3d",),
                payloads=(512, 4096),
            )
        )
        by_payload = {r["payload"]: r["packet_hops"] for r in records}
        assert by_payload[512] > by_payload[4096]

    def test_mapping_axis(self):
        records = run_sweep(
            SweepSpec(
                apps=(("MOCFE", 64),),
                topologies=("torus3d",),
                mappings=("consecutive", "random", "bisection"),
            )
        )
        by_mapping = {r["mapping"]: r["packet_hops"] for r in records}
        assert by_mapping["bisection"] <= by_mapping["random"]

    def test_bandwidth_axis_scales_utilization(self):
        records = run_sweep(
            SweepSpec(
                apps=(("MiniFE", 18),),
                topologies=("torus3d",),
                bandwidths=(1e9, 1e10),
            )
        )
        by_bw = {r["bandwidth"]: r["utilization_percent"] for r in records}
        assert by_bw[1e9] == pytest.approx(10 * by_bw[1e10], rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(apps=())
        with pytest.raises(ValueError):
            SweepSpec(topologies=("hypercube",))
        with pytest.raises(ValueError):
            SweepSpec(mappings=("magic",))
        with pytest.raises(ValueError):
            SweepSpec(payloads=(0,))

    def test_exports_cleanly(self):
        records = run_sweep(SweepSpec(apps=(("MiniFE", 18),)))
        assert rows_to_csv(records)
        assert json.loads(rows_to_json(records))
