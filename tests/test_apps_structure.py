"""Per-application structural contracts, one class per generator.

Where ``test_apps.py`` checks the shared generator machinery, this module
pins each application's *specific* communication structure at every
calibrated scale — the properties the paper's analyses depend on.
Rank counts above 300 are exercised in the benchmark suite instead.
"""

import math

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.comm.stats import trace_stats
from repro.core.events import CollectiveEvent, CollectiveOp
from repro.metrics.dimensionality import grid_shape, locality_by_dimension
from repro.metrics.locality import rank_distance
from repro.metrics.peers import peers, peers_per_rank
from repro.metrics.selectivity import per_rank_selectivity, selectivity


def p2p(app, ranks, variant=""):
    return matrix_from_trace(
        generate_trace(app, ranks, variant=variant), include_collectives=False
    )


def collective_ops(app, ranks):
    trace = generate_trace(app, ranks)
    return {ev.op for ev in trace.iter_collectives()}


class TestAMG:
    def test_full_connectivity_at_tiny_scale(self):
        # (2,2,2) open halo: every rank touches all 7 others
        m = p2p("AMG", 8)
        assert np.all(peers_per_rank(m) == 7)

    def test_center_rank_has_26_stencil_partners_at_27(self):
        m = p2p("AMG", 27)
        dsts, _ = m.row(13)  # center of the (3,3,3) grid
        assert len(dsts) == 26

    def test_coarse_levels_add_partners_at_216(self):
        m = p2p("AMG", 216)
        assert peers(m) > 26  # stencil alone would cap at 26

    def test_pure_p2p(self):
        trace = generate_trace("AMG", 27)
        assert not list(trace.iter_collectives())

    def test_3d_class(self):
        loc = locality_by_dimension(p2p("AMG", 216))
        assert loc[3] == 1.0

    def test_face_neighbours_dominate(self):
        m = p2p("AMG", 27)
        # rank 13's three heaviest partners are face neighbours (offsets
        # 1, 3, 9 on the (3,3,3) grid)
        dsts, nbytes = m.row(13)
        top = dsts[np.argsort(nbytes)[::-1][:6]]
        offsets = {abs(int(d) - 13) for d in top}
        assert offsets == {1, 3, 9}


class TestAMRMiniapp:
    def test_peers_band(self):
        assert 20 <= peers(p2p("AMR_Miniapp", 64)) <= 64

    def test_has_small_collective_share(self):
        stats = trace_stats(generate_trace("AMR_Miniapp", 64))
        assert 0.0 < stats.collective_share < 0.01

    def test_uses_allreduce(self):
        assert collective_ops("AMR_Miniapp", 64) == {CollectiveOp.ALLREDUCE}

    def test_scattered_but_windowed(self):
        # refinement neighbourhoods cluster: the 90% distance is well below
        # the uniform-random 0.68 N
        d = rank_distance(p2p("AMR_Miniapp", 64))
        assert d < 0.6 * 64


class TestBigFFT:
    @pytest.mark.parametrize("ranks", [9, 100])
    def test_no_p2p(self, ranks):
        assert p2p("BigFFT", ranks).num_pairs == 0

    def test_alltoall_only(self):
        assert collective_ops("BigFFT", 9) == {CollectiveOp.ALLTOALL}

    def test_full_matrix_is_uniform_alltoall(self):
        m = matrix_from_trace(generate_trace("BigFFT", 9))
        assert m.num_pairs == 81  # all pairs incl. self shares
        off = m.nbytes[m.src != m.dst]
        assert off.max() - off.min() <= 1  # even split

    def test_wire_volume_is_n_times_logical(self):
        stats = trace_stats(generate_trace("BigFFT", 9))
        ratio = stats.collective_wire_bytes / stats.collective_logical_bytes
        assert ratio == pytest.approx(9.0, rel=0.01)


class TestBoxlibCNS:
    def test_everyone_talks_to_everyone(self):
        assert peers(p2p("Boxlib_CNS", 64)) == 63

    def test_but_few_partners_matter(self):
        assert selectivity(p2p("Boxlib_CNS", 64)) < 10

    def test_no_dimensional_structure(self):
        loc = locality_by_dimension(p2p("Boxlib_CNS", 64))
        assert max(loc.values()) < 0.5

    def test_variant_same_pattern_different_time(self):
        a = generate_trace("Boxlib_CNS", 256)
        b = generate_trace("Boxlib_CNS", 256, variant="b")
        assert a.meta.execution_time > b.meta.execution_time
        ma, mb = (matrix_from_trace(t, include_collectives=False) for t in (a, b))
        assert np.array_equal(ma.src, mb.src)


class TestBoxlibMultiGridC:
    @pytest.mark.parametrize("ranks", [64, 256])
    def test_peers_pinned_at_26(self, ranks):
        assert peers(p2p("Boxlib_MultiGrid_C", ranks)) == 26

    def test_morton_scatters_linear_distance(self):
        # the 90% distance exceeds the largest row-major stencil offset
        m = p2p("Boxlib_MultiGrid_C", 64)
        assert rank_distance(m) > 21  # max |offset| of a (4,4,4) stencil

    def test_tiny_allreduce_share(self):
        stats = trace_stats(generate_trace("Boxlib_MultiGrid_C", 64))
        assert stats.collective_share < 0.001


class TestMOCFE:
    @pytest.mark.parametrize("ranks,expected", [(64, 12), (256, 20)])
    def test_partner_counts(self, ranks, expected):
        assert peers(p2p("MOCFE", ranks)) == expected

    def test_collective_dominated(self):
        stats = trace_stats(generate_trace("MOCFE", 64))
        assert stats.collective_share > 0.9

    def test_mix_of_alltoall_and_allreduce(self):
        assert collective_ops("MOCFE", 64) == {
            CollectiveOp.ALLTOALL,
            CollectiveOp.ALLREDUCE,
        }

    def test_worst_locality_in_study(self):
        d = rank_distance(p2p("MOCFE", 256))
        assert d > 0.6 * 256  # scattered uniformly


class TestNekbone:
    def test_halo_peers(self):
        assert 18 <= peers(p2p("Nekbone", 64)) <= 27

    def test_tiny_messages(self):
        """Nekbone's published packet counts imply ~400 B messages at 64
        ranks — the trace must consist of very many small sends."""
        trace = generate_trace("Nekbone", 64)
        m = matrix_from_trace(trace, include_collectives=False)
        mean_message = m.total_bytes / m.total_messages
        assert mean_message < 2048

    def test_collective_share_swings_with_scale(self):
        s64 = trace_stats(generate_trace("Nekbone", 64)).collective_share
        s256 = trace_stats(generate_trace("Nekbone", 256)).collective_share
        assert s64 < 0.01 < 0.4 < s256 < 0.6


class TestCrystalRouter:
    def test_hypercube_partners_at_100(self):
        m = p2p("CrystalRouter", 100)
        assert set(m.row(0)[0].tolist()) == {1, 2, 4, 8, 16, 32, 64}

    def test_peers_log2(self):
        for ranks in (10, 100):
            expected = math.ceil(math.log2(ranks))
            assert abs(peers(p2p("CrystalRouter", ranks)) - expected) <= 1

    def test_xor_symmetry(self):
        m = p2p("CrystalRouter", 100)
        pairs = set(zip(m.src.tolist(), m.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)


class TestCMC2D:
    def test_no_p2p(self):
        assert p2p("CMC_2D", 64).num_pairs == 0

    def test_rooted_collective_mix(self):
        ops = collective_ops("CMC_2D", 64)
        assert ops == {
            CollectiveOp.ALLREDUCE,
            CollectiveOp.BCAST,
            CollectiveOp.REDUCE,
        }

    def test_all_roots_are_rank_zero(self):
        trace = generate_trace("CMC_2D", 64)
        assert all(ev.root == 0 for ev in trace.iter_collectives())

    def test_tiny_volume_long_runtime(self):
        stats = trace_stats(generate_trace("CMC_2D", 64))
        assert stats.total_mb < 20
        assert stats.execution_time > 100
        assert stats.throughput_mb_per_s < 1.0


class TestLULESH:
    def test_corner_rank_has_7_partners(self):
        m = p2p("LULESH", 64)
        assert len(m.row(0)[0]) == 7

    def test_interior_rank_has_26(self):
        m = p2p("LULESH", 64)
        interior = (1 * 4 + 1) * 4 + 1
        assert len(m.row(interior)[0]) == 26

    def test_face_edge_corner_volume_ordering(self):
        m = p2p("LULESH", 64)
        dsts, nbytes = m.row(0)
        by_dst = dict(zip(dsts.tolist(), nbytes.tolist()))
        face, edge, corner = by_dst[16], by_dst[20], by_dst[21]
        assert face > edge > corner

    def test_corner_selectivity_is_three(self):
        sel = per_rank_selectivity(p2p("LULESH", 64))
        assert sel[0] == 3  # three faces carry >90% at a corner


class TestFillBoundary:
    def test_peers_26(self):
        assert peers(p2p("FillBoundary", 125)) == 26

    def test_morton_scatter(self):
        assert rank_distance(p2p("FillBoundary", 125)) > 31  # stencil max offset


class TestMiniFE:
    def test_thinned_stencil(self):
        assert peers(p2p("MiniFE", 144)) < 26  # part of the diagonals dropped

    def test_faces_always_present(self):
        m = p2p("MiniFE", 144)
        shape = grid_shape(144, 3)
        interior = (shape[1] * (1) + 1) * shape[2] + 1  # coord (1,1,1)
        dsts = set(m.row(interior)[0].tolist())
        for offset in (1, shape[2], shape[1] * shape[2]):
            assert interior + offset in dsts
            assert interior - offset in dsts


class TestMultiGridC:
    def test_strided_far_partners(self):
        m = p2p("MultiGrid_C", 125)
        dsts, _ = m.row(62)  # center of (5,5,5): x +- 2 strides exist
        assert 62 + 2 * 25 in set(dsts.tolist())

    def test_distance_beyond_stencil(self):
        assert rank_distance(p2p("MultiGrid_C", 125)) > 26


class TestPARTISN:
    def test_sweep_neighbours_dominate(self):
        m = p2p("PARTISN", 168)
        dsts, nbytes = m.row(30)  # interior rank of the (14,12) grid
        heavy = set(dsts[np.argsort(nbytes)[::-1][:4]].tolist())
        assert heavy == {30 - 1, 30 + 1, 30 - 12, 30 + 12}

    def test_2d_class(self):
        loc = locality_by_dimension(p2p("PARTISN", 168))
        assert loc[2] == 1.0

    def test_background_reaches_everyone(self):
        assert peers(p2p("PARTISN", 168)) == 167

    def test_compute_bound_throughput(self):
        stats = trace_stats(generate_trace("PARTISN", 168))
        assert stats.throughput_mb_per_s < 0.1


class TestSNAP:
    def test_sweep_plus_scattered(self):
        assert peers(p2p("SNAP", 168)) == 48

    def test_no_collectives(self):
        assert not collective_ops("SNAP", 168)

    def test_long_distance_tail(self):
        assert rank_distance(p2p("SNAP", 168)) > 80
