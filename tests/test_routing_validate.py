"""Edge cases of :mod:`repro.routing.validate` — the route walk checker.

The property tests in ``test_routing.py`` sweep every policy × topology
pair through :func:`walks_are_valid`; these tests pin the checker's own
semantics at the boundaries: the 0-hop convention for same-node pairs,
wraparound torus walks (where naive coordinate deltas mislead), and the
rejection of structurally corrupted incidences — each corruption breaking
a different clause of the Eulerian-walk characterization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing import get_policy
from repro.routing.validate import link_endpoints, walks_are_valid
from repro.topology.base import RouteIncidence
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D

TOPOLOGIES = [
    pytest.param(Torus3D((4, 3, 3)), id="torus3d"),
    pytest.param(FatTree(8, 3), id="fattree"),
    pytest.param(Dragonfly(4, 2, 2), id="dragonfly"),
]


def _route(topology, src, dst):
    return get_policy("minimal").route_incidence(
        topology,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
    )


class TestZeroHopRoutes:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_same_node_pairs_have_no_rows_and_validate(self, topology):
        src = np.array([0, 5, topology.num_nodes - 1], dtype=np.int64)
        inc = _route(topology, src, src)
        assert inc.num_incidences == 0
        assert walks_are_valid(topology, src, src, inc).all()

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_mixed_batch_keeps_zero_hop_convention(self, topology):
        # Same-node pairs interleaved with real routes: only the real
        # routes contribute rows, and every pair still validates.
        src = np.array([3, 0, 7, 2], dtype=np.int64)
        dst = np.array([3, 9, 7, 11], dtype=np.int64)
        inc = _route(topology, src, dst)
        assert not np.isin(inc.pair_index, [0, 2]).any()
        assert walks_are_valid(topology, src, dst, inc).all()

    def test_zero_rows_for_distinct_pair_is_invalid(self):
        topology = Torus3D((3, 3, 3))
        empty = RouteIncidence(
            pair_index=np.empty(0, dtype=np.int64),
            link_id=np.empty(0, dtype=np.int64),
        )
        src = np.array([0], dtype=np.int64)
        dst = np.array([1], dtype=np.int64)
        assert not walks_are_valid(topology, src, dst, empty).any()


class TestTorusWraparound:
    def test_wrap_link_is_the_shortest_x_route(self):
        # On a 4-ring, 0 -> 3 in x is one hop *backwards* through the
        # wraparound link owned by node 3 (links join owner to +dim).
        topology = Torus3D((4, 3, 3))
        src = np.array([0], dtype=np.int64)
        dst = np.array([3 * 9], dtype=np.int64)  # coordinate (3, 0, 0)
        inc = _route(topology, src, dst)
        assert inc.num_incidences == 1
        u, v = link_endpoints(topology, inc.link_id)
        assert {int(u[0]), int(v[0])} == {0, 27}
        assert walks_are_valid(topology, src, dst, inc).all()

    def test_all_dimensions_wrap(self):
        # (0,0,0) -> (3,2,2): every dimension is shorter through the wrap
        # (distance 1+1+1), so the walk uses exactly three wrap links.
        topology = Torus3D((4, 3, 3))
        src = np.array([0], dtype=np.int64)
        dst = np.array([(3 * 3 + 2) * 3 + 2], dtype=np.int64)
        inc = _route(topology, src, dst)
        assert inc.num_incidences == 3
        owners = inc.link_id // 3
        assert not np.isin(0, owners)  # none owned by the source
        assert walks_are_valid(topology, src, dst, inc).all()

    def test_random_wrap_heavy_batch_validates(self):
        topology = Torus3D((4, 3, 3))
        rng = np.random.default_rng(5)
        src = rng.integers(0, topology.num_nodes, size=64)
        dst = rng.integers(0, topology.num_nodes, size=64)
        inc = _route(topology, src, dst)
        assert walks_are_valid(topology, src, dst, inc).all()


class TestCorruptedIncidence:
    """Each corruption violates a different Eulerian-walk clause."""

    @pytest.fixture()
    def valid(self):
        topology = Torus3D((3, 3, 3))
        src = np.array([0], dtype=np.int64)
        dst = np.array([26], dtype=np.int64)  # (2,2,2): multi-hop route
        inc = _route(topology, src, dst)
        assert inc.num_incidences >= 3
        assert walks_are_valid(topology, src, dst, inc).all()
        return topology, src, dst, inc

    def test_dropped_row_breaks_parity(self, valid):
        topology, src, dst, inc = valid
        corrupted = RouteIncidence(
            pair_index=inc.pair_index[1:], link_id=inc.link_id[1:]
        )
        assert not walks_are_valid(topology, src, dst, corrupted).any()

    def test_duplicated_row_breaks_parity(self, valid):
        topology, src, dst, inc = valid
        corrupted = RouteIncidence(
            pair_index=np.concatenate([inc.pair_index, inc.pair_index[:1]]),
            link_id=np.concatenate([inc.link_id, inc.link_id[:1]]),
        )
        assert not walks_are_valid(topology, src, dst, corrupted).any()

    def test_disconnected_substitute_breaks_connectivity(self, valid):
        topology, src, dst, inc = valid
        # Replace one hop with a far-away link: degrees at the walk's
        # endpoints can stay odd, but the edge set splits in two.
        far = _route(
            topology,
            np.array([13], dtype=np.int64),
            np.array([14], dtype=np.int64),
        )
        assert far.num_incidences == 1
        link_id = inc.link_id.copy()
        link_id[1] = far.link_id[0]
        corrupted = RouteIncidence(pair_index=inc.pair_index, link_id=link_id)
        assert not walks_are_valid(topology, src, dst, corrupted).any()

    def test_corruption_is_per_pair(self, valid):
        topology, _, _, inc = valid
        # A second, intact pair in the same batch must keep validating.
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([26, 2], dtype=np.int64)
        batch = _route(topology, src, dst)
        keep = ~(
            (batch.pair_index == 0)
            & (batch.link_id == batch.link_id[batch.pair_index == 0][0])
        )
        corrupted = RouteIncidence(
            pair_index=batch.pair_index[keep], link_id=batch.link_id[keep]
        )
        ok = walks_are_valid(topology, src, dst, corrupted)
        assert not ok[0] and ok[1]
