"""Tests for the tree-based collective expansion (ablation counterpart)."""

import math

import numpy as np
import pytest

from repro.collectives.patterns import expand_collective
from repro.collectives.tree import expand_collective_tree
from repro.core.communicator import Communicator
from repro.core.events import CollectiveEvent, CollectiveOp


def union(op, n, count=100, root=0):
    """All (src, dst, bytes) messages of one collective over all callers."""
    comm = Communicator.world(n)
    msgs = []
    for caller in range(n):
        ev = CollectiveEvent(caller=caller, op=op, count=count, root=root)
        for g in expand_collective_tree(ev, comm, 1):
            for dst, size in zip(g.dsts, g.bytes_per_msg):
                msgs.append((caller, int(dst), int(size)))
    return msgs


class TestBcastTree:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 7, 12])
    def test_message_count_is_n_minus_one(self, n):
        msgs = union(CollectiveOp.BCAST, n)
        assert len(msgs) == n - 1

    @pytest.mark.parametrize("n", [8, 16, 9])
    def test_every_rank_reached(self, n):
        msgs = union(CollectiveOp.BCAST, n)
        reached = {0}
        # simulate rounds: a message is valid once its source was reached
        pending = list(msgs)
        progress = True
        while pending and progress:
            progress = False
            for m in list(pending):
                if m[0] in reached:
                    reached.add(m[1])
                    pending.remove(m)
                    progress = True
        assert reached == set(range(n))

    def test_root_sends_log_n_messages(self):
        comm = Communicator.world(16)
        ev = CollectiveEvent(caller=0, op=CollectiveOp.BCAST, count=10, root=0)
        groups = expand_collective_tree(ev, comm, 1)
        assert sum(len(g.dsts) for g in groups) == 4  # log2(16)

    def test_nonzero_root(self):
        msgs = union(CollectiveOp.BCAST, 8, root=3)
        assert len(msgs) == 7
        assert all(src != dst for src, dst, _ in msgs)


class TestReduceGatherTree:
    @pytest.mark.parametrize("n", [4, 8, 11])
    def test_reduce_message_count(self, n):
        assert len(union(CollectiveOp.REDUCE, n)) == n - 1

    def test_reduce_root_receives_log_n(self):
        msgs = union(CollectiveOp.REDUCE, 16)
        to_root = [m for m in msgs if m[1] == 0]
        assert len(to_root) == 4

    def test_gather_volume_conserved(self):
        """Every rank's contribution reaches the root exactly once."""
        n, count = 8, 10
        msgs = union(CollectiveOp.GATHER, n, count=count)
        to_root = sum(size for _, dst, size in msgs if dst == 0)
        assert to_root == (n - 1) * count  # root's own share stays local


class TestAllreduceTree:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_power_of_two_recursive_doubling(self, n):
        msgs = union(CollectiveOp.ALLREDUCE, n)
        assert len(msgs) == n * int(math.log2(n))
        # partners are bit flips
        for src, dst, _ in msgs:
            assert bin(src ^ dst).count("1") == 1

    def test_non_power_of_two_folds(self):
        msgs = union(CollectiveOp.ALLREDUCE, 6)
        # ranks 4,5 fold into 0,1; then 4 ranks x log2(4) exchanges; unfold
        assert len(msgs) == 2 + 4 * 2 + 2

    def test_fewer_wire_bytes_than_flat_at_scale(self):
        """The ablation's point: the flat model's central root inflates
        volume versus recursive doubling... volumes are equal, but the flat
        pattern serializes through the root — compare max per-link style
        metrics instead of totals: here we check root in/out degree."""
        n = 32
        flat_msgs = []
        comm = Communicator.world(n)
        for caller in range(n):
            ev = CollectiveEvent(caller=caller, op=CollectiveOp.ALLREDUCE, count=1)
            for g in expand_collective(ev, comm, 1):
                for dst in g.dsts:
                    flat_msgs.append((caller, int(dst)))
        tree_msgs = [(s, d) for s, d, _ in union(CollectiveOp.ALLREDUCE, n, count=1)]
        flat_root_degree = sum(1 for s, d in flat_msgs if 0 in (s, d))
        tree_root_degree = sum(1 for s, d in tree_msgs if 0 in (s, d))
        assert tree_root_degree < flat_root_degree


class TestAllgatherTree:
    def test_power_of_two_volume(self):
        n, count = 8, 5
        msgs = union(CollectiveOp.ALLGATHER, n, count=count)
        # recursive doubling total: n * (n-1) * count bytes moved
        assert sum(size for _, _, size in msgs) == n * (n - 1) * count


class TestFallbacks:
    def test_alltoall_falls_back_to_flat(self):
        comm = Communicator.world(8)
        ev = CollectiveEvent(caller=0, op=CollectiveOp.ALLTOALL, count=10)
        flat = expand_collective(ev, comm, 1)
        tree = expand_collective_tree(ev, comm, 1)
        assert [g.total_bytes for g in tree] == [g.total_bytes for g in flat]

    def test_single_member(self):
        solo = Communicator("S", (2,))
        ev = CollectiveEvent(caller=2, op=CollectiveOp.BCAST, count=5, comm="S")
        assert expand_collective_tree(ev, solo, 1) == []
