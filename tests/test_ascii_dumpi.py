"""Tests for the dumpi2ascii converter (real SST-dumpi text output)."""

import io
import textwrap

import pytest

from repro.comm.stats import trace_stats
from repro.dumpi.ascii_dumpi import (
    UnsupportedCommunicatorError,
    load_dumpi2ascii_dir,
    parse_rank_stream,
)

SEND = textwrap.dedent(
    """\
    MPI_Send entering at walltime 100.50, cputime 0.2 seconds in thread 0.
    int count=4096
    MPI_Datatype datatype=2 (MPI_CHAR)
    int dest=5
    int tag=7
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Send returning at walltime 100.60, cputime 0.3 seconds in thread 0.
    """
)

RECV = textwrap.dedent(
    """\
    MPI_Recv entering at walltime 101.00, cputime 0.4 seconds in thread 0.
    int count=128
    MPI_Datatype datatype=11 (MPI_DOUBLE)
    int source=2
    int tag=7
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Status* status=<IGNORED>
    MPI_Recv returning at walltime 101.10, cputime 0.5 seconds in thread 0.
    """
)

ALLREDUCE = textwrap.dedent(
    """\
    MPI_Allreduce entering at walltime 102.00, cputime 0.6 seconds in thread 0.
    int count=16
    MPI_Datatype datatype=11 (MPI_DOUBLE)
    MPI_Op op=1 (MPI_SUM)
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Allreduce returning at walltime 102.20, cputime 0.7 seconds in thread 0.
    """
)

BOOKKEEPING = textwrap.dedent(
    """\
    MPI_Comm_rank entering at walltime 99.00, cputime 0.0 seconds in thread 0.
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    int* rank=0
    MPI_Comm_rank returning at walltime 99.01, cputime 0.0 seconds in thread 0.
    """
)

SUBCOMM = textwrap.dedent(
    """\
    MPI_Bcast entering at walltime 103.00, cputime 0.8 seconds in thread 0.
    int count=4
    MPI_Datatype datatype=4 (MPI_INT)
    int root=0
    MPI_Comm comm=5 (user-defined-comm)
    MPI_Bcast returning at walltime 103.10, cputime 0.9 seconds in thread 0.
    """
)


def parse(text, rank=0, strict=True):
    return parse_rank_stream(io.StringIO(text), rank, strict)


class TestParseRankStream:
    def test_send_record(self):
        events, lo, hi = parse(SEND, rank=3)
        assert len(events) == 1
        ev = events[0]
        assert ev.caller == 3 and ev.peer == 5
        assert ev.count == 4096 and ev.dtype == "MPI_CHAR" and ev.tag == 7
        assert ev.is_send
        assert (lo, hi) == (100.50, 100.60)

    def test_recv_record_kept_but_not_send(self):
        events, _, _ = parse(RECV, rank=1)
        assert len(events) == 1
        assert not events[0].is_send
        assert events[0].peer == 2
        assert events[0].dtype == "MPI_DOUBLE"

    def test_collective(self):
        events, _, _ = parse(ALLREDUCE)
        assert len(events) == 1
        ev = events[0]
        assert ev.func == "MPI_Allreduce" and ev.count == 16

    def test_bookkeeping_calls_skipped(self):
        events, _, _ = parse(BOOKKEEPING + SEND)
        assert len(events) == 1
        assert events[0].func == "MPI_Send"

    def test_unknown_communicator_strict(self):
        with pytest.raises(UnsupportedCommunicatorError):
            parse(SUBCOMM, strict=True)

    def test_unknown_communicator_lenient_skips(self):
        events, _, _ = parse(SUBCOMM + SEND, strict=False)
        assert [ev.func for ev in events] == ["MPI_Send"]

    def test_empty_stream(self):
        events, lo, hi = parse("")
        assert events == [] and lo == hi == 0.0

    def test_mixed_stream_order_and_span(self):
        events, lo, hi = parse(SEND + RECV + ALLREDUCE)
        assert len(events) == 3
        assert (lo, hi) == (100.50, 102.20)

    def test_negative_peer_skipped(self):
        text = SEND.replace("int dest=5", "int dest=-1")  # MPI_PROC_NULL
        events, _, _ = parse(text)
        assert events == []


class TestDirectoryLoader:
    def _write(self, directory, rank, text):
        (directory / f"dumpi-2020-{rank:04d}.txt").write_text(text)

    def test_assembles_trace(self, tmp_path):
        self._write(tmp_path, 0, SEND + ALLREDUCE)  # dest=5 needs 6 ranks
        self._write(tmp_path, 1, RECV + ALLREDUCE)
        self._write(tmp_path, 2, ALLREDUCE)
        self._write(tmp_path, 3, ALLREDUCE)
        self._write(tmp_path, 4, ALLREDUCE)
        self._write(tmp_path, 5, ALLREDUCE)
        trace = load_dumpi2ascii_dir(tmp_path, app="real_app")
        assert trace.meta.num_ranks == 6
        assert trace.meta.app == "real_app"
        stats = trace_stats(trace)
        assert stats.p2p_bytes == 4096
        # 6 callers x 16 doubles x 8 bytes
        assert stats.collective_logical_bytes == 6 * 16 * 8

    def test_times_normalized(self, tmp_path):
        for rank in range(6):
            self._write(tmp_path, rank, SEND if rank == 0 else "")
        trace = load_dumpi2ascii_dir(tmp_path, app="x")
        assert trace.events[0].t_enter == 0.0
        assert trace.meta.execution_time == pytest.approx(0.1)

    def test_missing_rank_detected(self, tmp_path):
        self._write(tmp_path, 0, SEND + SEND)
        self._write(tmp_path, 2, ALLREDUCE)
        with pytest.raises(ValueError, match="missing rank"):
            load_dumpi2ascii_dir(tmp_path, app="x")

    def test_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dumpi2ascii_dir(tmp_path, app="x")

    def test_pipeline_through_metrics(self, tmp_path):
        """Converted traces run through the normal analysis unchanged."""
        from repro.comm.matrix import matrix_from_trace
        from repro.metrics.peers import peers

        for rank in range(6):
            body = SEND if rank == 0 else ALLREDUCE
            self._write(tmp_path, rank, body)
        trace = load_dumpi2ascii_dir(tmp_path, app="x")
        matrix = matrix_from_trace(trace, include_collectives=False)
        assert peers(matrix) == 1
