"""Tests for the fat-tree model."""

import numpy as np
import pytest

from repro.topology.fattree import FatTree


class TestStructure:
    def test_node_counts_match_table2(self):
        assert FatTree(48, 1).num_nodes == 48
        assert FatTree(48, 2).num_nodes == 576
        assert FatTree(48, 3).num_nodes == 13824

    def test_diameter(self):
        assert FatTree(48, 1).diameter == 2
        assert FatTree(48, 3).diameter == 6

    def test_nominal_links_paper_formula(self):
        # nodes * stages, half for the last stage
        assert FatTree(48, 1).nominal_links(48) == pytest.approx(24.0)
        assert FatTree(48, 2).nominal_links(576) == pytest.approx(864.0)
        assert FatTree(48, 3).nominal_links(1000) == pytest.approx(2500.0)
        # links per node stays below three (paper §7)
        assert FatTree(48, 3).nominal_links(100) / 100 < 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(47, 1)  # odd radix
        with pytest.raises(ValueError):
            FatTree(48, 4)

    def test_leaf_and_pod_indexing(self):
        ft = FatTree(48, 3)
        assert ft.leaf_of(np.array([0, 23, 24])).tolist() == [0, 0, 1]
        assert ft.pod_of(np.array([575, 576])).tolist() == [0, 1]


class TestHops:
    def test_single_switch_all_pairs_two_hops(self):
        ft = FatTree(48, 1)
        src, dst = np.meshgrid(np.arange(48), np.arange(48))
        hops = ft.hops_array(src.ravel(), dst.ravel())
        off = src.ravel() != dst.ravel()
        assert np.all(hops[off] == 2)
        assert np.all(hops[~off] == 0)

    def test_two_stage_levels(self):
        ft = FatTree(48, 2)
        assert ft.hops(0, 1) == 2  # same leaf (nodes 0..23)
        assert ft.hops(0, 23) == 2
        assert ft.hops(0, 24) == 4  # next leaf

    def test_three_stage_levels(self):
        ft = FatTree(48, 3)
        assert ft.hops(0, 5) == 2  # same leaf
        assert ft.hops(0, 24) == 4  # same pod, different leaf
        assert ft.hops(0, 576) == 6  # different pod

    def test_symmetry(self):
        ft = FatTree(48, 3)
        rng = np.random.default_rng(0)
        a = rng.integers(0, ft.num_nodes, 500)
        b = rng.integers(0, ft.num_nodes, 500)
        assert np.array_equal(ft.hops_array(a, b), ft.hops_array(b, a))

    def test_paper_bigfft9_average(self):
        """BigFFT@9 on (48,1): alltoall with self gives exactly 2*(N-1)/N."""
        ft = FatTree(48, 1)
        n = 9
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        hops = ft.hops_array(src.ravel(), dst.ravel())
        assert hops.mean() == pytest.approx(2 * (n - 1) / n)  # = 1.78

    def test_consecutive_100_ranks_average(self):
        """Validated against the paper's BigFFT@100 fat-tree value (3.52)."""
        ft = FatTree(48, 2)
        n = 100
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        mean = ft.hops_array(src.ravel(), dst.ravel()).mean()
        assert mean == pytest.approx(3.52, abs=0.02)


class TestRoutes:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_route_length_equals_hops(self, stages):
        ft = FatTree(48, stages)
        rng = np.random.default_rng(stages)
        src = rng.integers(0, ft.num_nodes, 300)
        dst = rng.integers(0, ft.num_nodes, 300)
        inc = ft.route_incidence(src, dst)
        counted = np.bincount(inc.pair_index, minlength=300)
        assert np.array_equal(counted, ft.hops_array(src, dst))

    def test_same_leaf_uses_only_node_links(self):
        ft = FatTree(48, 2)
        links = ft.route_links(0, 1)
        assert sorted(links) == [0, 1]  # level-0 ids equal node ids

    def test_up_down_lanes_match(self):
        """The d-mod-k lane is shared by the up and down legs."""
        ft = FatTree(48, 2)
        links = ft.route_links(0, 30)
        l1 = [lid for lid in links if lid >= ft.num_nodes]
        lanes = [(lid - ft.num_nodes) % ft.k for lid in l1]
        assert len(set(lanes)) == 1

    def test_deterministic_routing_same_destination_same_lane(self):
        """All traffic to one destination converges on one down path."""
        ft = FatTree(48, 2)
        dst = 100
        lanes = set()
        for src in (0, 30, 60, 200):
            if ft.leaf_of(np.array([src]))[0] == ft.leaf_of(np.array([dst]))[0]:
                continue
            l1 = [lid for lid in ft.route_links(src, dst) if lid >= ft.num_nodes]
            lanes.update((lid - ft.num_nodes) % ft.k for lid in l1)
        assert len(lanes) == 1

    def test_used_link_ids_unique_namespaces(self):
        ft = FatTree(48, 3)
        inc = ft.route_incidence(np.array([0]), np.array([600]))
        assert len(set(inc.link_id.tolist())) == 6  # all distinct links

    def test_describe_link(self):
        ft = FatTree(48, 3)
        assert "node link" in ft.describe_link(0)
        assert "L1" in ft.describe_link(ft.num_nodes)
        assert "L2" in ft.describe_link(ft.num_nodes + ft.num_leaves * ft.k)
