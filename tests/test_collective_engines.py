"""Pluggable collective-algorithm engines: registry, conservation, parity.

The flat engine is the paper's §4.4 expansion and must stay bit-identical
to the parameterless default.  The tree engines (binomial, ring,
recursive_doubling, bine) reshape the wire traffic but must conserve the
*delivered payload* exactly — per-member net-byte laws that hold for every
engine at every communicator size, including the awkward non-power-of-two
sizes with counts that do not divide evenly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import cached_trace
from repro.collectives import (
    COLLECTIVES,
    CollectiveAlgorithm,
    even_split,
    expand_collective_tree,
    get_algorithm,
)
from repro.comm.matrix import matrix_from_trace
from repro.core.communicator import Communicator
from repro.core.events import CollectiveEvent, CollectiveOp
from repro.validation import REGISTRY
from repro.validation.invariants import matrices_identical

ENGINES = COLLECTIVES
TREE_ENGINES = tuple(a for a in COLLECTIVES if a != "flat")
SIZES = (5, 6, 7, 12)  # non-powers-of-two; count=25 never divides evenly
COUNT = 25

ROOTED = (
    CollectiveOp.BCAST,
    CollectiveOp.SCATTER,
    CollectiveOp.SCATTERV,
    CollectiveOp.REDUCE,
    CollectiveOp.GATHER,
    CollectiveOp.GATHERV,
)

NON_BARRIER = tuple(op for op in CollectiveOp if op is not CollectiveOp.BARRIER)


def net_flows(algo, op, n, count=COUNT, root=0, counts=None):
    """Per-rank (inflow, outflow) over the union of every caller's expansion.

    Self-messages are excluded — they cancel in every net-delivery law and
    only the flat engine emits them.  ``counts`` overrides the per-caller
    contribution (heterogeneous GATHERV).
    """
    comm = Communicator.world(n)
    engine = get_algorithm(algo)
    inflow = np.zeros(n, dtype=np.int64)
    outflow = np.zeros(n, dtype=np.int64)
    for caller in range(n):
        c = count if counts is None else counts[caller]
        ev = CollectiveEvent(caller=caller, op=op, count=c, root=root)
        for g in engine.expand(ev, comm, 1):
            for dst, size in zip(g.dsts, g.bytes_per_msg):
                if int(dst) == g.src:
                    continue
                outflow[g.src] += int(size) * g.calls
                inflow[int(dst)] += int(size) * g.calls
    return inflow, outflow


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_canonical_names(self):
        assert COLLECTIVES == (
            "flat",
            "binomial",
            "ring",
            "recursive_doubling",
            "bine",
        )

    @pytest.mark.parametrize("name", ENGINES)
    def test_resolves_by_name(self, name):
        engine = get_algorithm(name)
        assert isinstance(engine, CollectiveAlgorithm)
        assert engine.name == name

    def test_instance_passes_through(self):
        engine = get_algorithm("binomial")
        assert get_algorithm(engine) is engine

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown collective"):
            get_algorithm("nope")

    def test_cache_tokens_distinct(self):
        tokens = {get_algorithm(name).cache_token() for name in ENGINES}
        assert len(tokens) == len(ENGINES)

    def test_tree_helper_exported(self):
        import repro.collectives as pkg

        assert "expand_collective_tree" in pkg.__all__
        assert pkg.expand_collective_tree is expand_collective_tree


# ------------------------------------------------------- root validation


class TestRootValidation:
    def test_negative_root_rejected_at_construction(self):
        with pytest.raises(ValueError, match="non-negative"):
            CollectiveEvent(
                caller=0, op=CollectiveOp.BCAST, count=COUNT, root=-1
            )

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("bad_root", [8, 64])
    def test_per_event_rejects_out_of_range_root(self, algo, bad_root):
        comm = Communicator.world(8)
        engine = get_algorithm(algo)
        ev = CollectiveEvent(
            caller=0, op=CollectiveOp.BCAST, count=COUNT, root=bad_root
        )
        with pytest.raises(ValueError) as err:
            engine.expand(ev, comm, 1)
        message = str(err.value)
        assert str(bad_root) in message
        assert "MPI_Bcast" in message

    @pytest.mark.parametrize("algo", ENGINES)
    def test_batch_rejects_out_of_range_root(self, algo):
        comm = Communicator.world(8)
        engine = get_algorithm(algo)
        n = comm.size
        with pytest.raises(ValueError, match="out of range"):
            engine.expand_batch(
                CollectiveOp.SCATTER,
                comm,
                np.arange(n, dtype=np.int64),
                np.full(n, COUNT, dtype=np.int64),
                np.full(n, n, dtype=np.int64),  # == comm.size, one past the end
                np.ones(n, dtype=np.int64),
            )

    def test_tree_path_rejects_out_of_range_root(self):
        comm = Communicator.world(8)
        ev = CollectiveEvent(
            caller=0, op=CollectiveOp.GATHER, count=COUNT, root=9
        )
        with pytest.raises(ValueError, match="communicator-local"):
            expand_collective_tree(ev, comm, 1)

    @pytest.mark.parametrize("algo", ENGINES)
    def test_unrooted_ops_ignore_root_field(self, algo):
        comm = Communicator.world(8)
        ev = CollectiveEvent(
            caller=0, op=CollectiveOp.ALLREDUCE, count=COUNT, root=99
        )
        assert get_algorithm(algo).expand(ev, comm, 1) is not None


# --------------------------------------------------- byte conservation


class TestByteConservation:
    """Net delivered payload is engine-independent for every rooted op."""

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("root", [0, 2])
    def test_bcast_delivers_count_to_every_nonroot(self, algo, n, root):
        inflow, _ = net_flows(algo, CollectiveOp.BCAST, n, root=root)
        expected = np.full(n, COUNT, dtype=np.int64)
        expected[root] = inflow[root]  # the root's inflow is engine-free
        assert inflow[root] == 0
        assert np.array_equal(inflow, expected)

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("root", [0, 2])
    def test_scatter_net_delivery(self, algo, n, root):
        inflow, outflow = net_flows(algo, CollectiveOp.SCATTER, n, root=root)
        net = inflow - outflow
        for m in range(n):
            if m == root:
                assert net[m] == -(n - 1) * COUNT
            else:
                assert net[m] == COUNT

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    def test_scatterv_remainder_conserved(self, algo, n):
        # count=25 is the TOTAL at the root; 25 % n != 0 for every n here,
        # so a naive count//n per-subtree split loses the remainder.
        inflow, outflow = net_flows(algo, CollectiveOp.SCATTERV, n)
        shares = even_split(COUNT, n)
        net = inflow - outflow
        assert net[0] == -(COUNT - shares[0])
        assert np.array_equal(net[1:], shares[1:])

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("root", [0, 2])
    def test_reduce_every_nonroot_forwards_result(self, algo, n, root):
        _, outflow = net_flows(algo, CollectiveOp.REDUCE, n, root=root)
        for m in range(n):
            if m != root:
                assert outflow[m] == COUNT

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("root", [0, 2])
    def test_gather_net_delivery(self, algo, n, root):
        inflow, outflow = net_flows(algo, CollectiveOp.GATHER, n, root=root)
        net = outflow - inflow
        for m in range(n):
            if m == root:
                assert net[m] == -(n - 1) * COUNT
            else:
                assert net[m] == COUNT

    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    def test_gatherv_heterogeneous_exact(self, algo, n):
        counts = [10 + 3 * caller for caller in range(n)]
        inflow, outflow = net_flows(
            algo, CollectiveOp.GATHERV, n, counts=counts
        )
        net = outflow - inflow
        assert net[0] == -sum(counts[1:])
        assert np.array_equal(net[1:], np.asarray(counts[1:]))


class TestScattervRegressions:
    """The exact totals that used to lose the remainder in the tree path."""

    @pytest.mark.parametrize("total", [24, 56])
    @pytest.mark.parametrize("n", [5, 7])
    def test_binomial_delivers_every_byte(self, total, n):
        inflow, outflow = net_flows(
            "binomial", CollectiveOp.SCATTERV, n, count=total
        )
        shares = even_split(total, n)
        assert (outflow[0] - inflow[0]) == total - shares[0]
        assert inflow.sum() == outflow.sum()  # nothing created or lost
        assert np.array_equal((inflow - outflow)[1:], shares[1:])


# ------------------------------------------------ batch/per-event parity


def batch_multiset(engine, op, n, count=COUNT):
    comm = Communicator.world(n)
    out = {}
    batches = engine.expand_batch(
        op,
        comm,
        np.arange(n, dtype=np.int64),
        np.full(n, count, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.ones(n, dtype=np.int64),
    )
    for src, dst, nbytes, calls in batches:
        for s, d, b, c in zip(src, dst, nbytes, calls):
            key = (int(s), int(d), int(b))
            out[key] = out.get(key, 0) + int(c)
    return out


def per_event_multiset(engine, op, n, count=COUNT):
    comm = Communicator.world(n)
    out = {}
    for caller in range(n):
        ev = CollectiveEvent(caller=caller, op=op, count=count, root=0)
        for g in engine.expand(ev, comm, 1):
            for dst, size in zip(g.dsts, g.bytes_per_msg):
                key = (g.src, int(dst), int(size))
                out[key] = out.get(key, 0) + g.calls
    return out


class TestBatchParity:
    @pytest.mark.parametrize("algo", ENGINES)
    @pytest.mark.parametrize("op", NON_BARRIER, ids=lambda op: op.value)
    @pytest.mark.parametrize("n", [5, 8])
    def test_batch_equals_per_event_multiset(self, algo, op, n):
        engine = get_algorithm(algo)
        assert batch_multiset(engine, op, n) == per_event_multiset(
            engine, op, n
        )


# --------------------------------------------------- trace-level checks


class TestTraceLevel:
    @pytest.fixture(scope="class")
    def trace(self):
        return cached_trace("AMR_Miniapp", 64)

    def test_flat_is_the_default(self, trace):
        assert matrices_identical(
            matrix_from_trace(trace),
            matrix_from_trace(trace, collective="flat"),
        )

    @pytest.mark.parametrize("algo", TREE_ENGINES)
    def test_tree_engines_change_the_matrix(self, trace, algo):
        flat = matrix_from_trace(trace, collective="flat")
        tree = matrix_from_trace(trace, collective=algo)
        assert not matrices_identical(flat, tree)

    @pytest.mark.parametrize("algo", ("binomial", "ring", "bine"))
    def test_critpath_dag_stays_acyclic(self, trace, algo):
        from repro.critpath import analyze_trace

        result = analyze_trace(
            trace, max_repeat=4, fd_check=False, collective=algo
        )
        assert result.collective == algo
        assert result.nodes > 0

    def test_conservation_invariant_registered(self):
        assert "collective-byte-conservation" in REGISTRY


# --------------------------------------------------------- sweep axis


class TestSweepAxis:
    def make_spec(self, collectives):
        from repro.analysis.sweep import SweepSpec

        return SweepSpec(
            apps=(("halo3d", 8),),
            topologies=("torus3d",),
            mappings=("consecutive",),
            payloads=(256,),
            routings=("minimal",),
            collectives=collectives,
        )

    def test_points_carry_the_collective_field(self):
        spec = self.make_spec(("flat", "binomial"))
        points = spec.points()
        assert spec.num_points == len(points) == 2
        assert {p[6] for p in points} == {"flat", "binomial"}

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            self.make_spec(("flat", "nope"))

    def test_spec_roundtrips_through_cells(self):
        from repro.service.cells import spec_from_dict, spec_to_dict

        spec = self.make_spec(("flat", "ring"))
        assert spec_from_dict(spec_to_dict(spec)) == spec
