"""Quick performance smoke tests (``pytest -m perf`` selects them).

These assert speed *ratios*, never wall times, so they hold on slow CI
machines.  The heavyweight calibrated benchmark (with the 10x target and
the BENCH_sim.json artifact) lives in ``benchmarks/test_perf_sim.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from helpers import make_matrix

from repro import cache
from repro.sim.common import prepare_simulation
from repro.sim.engine import run_batched
from repro.sim.reference import run_reference
from repro.topology.dragonfly import Dragonfly

pytestmark = pytest.mark.perf


def _dense_matrix(num_ranks: int, packets_per_pair: int = 60, seed: int = 0):
    rng = np.random.default_rng(seed)
    pairs = []
    for src in range(num_ranks):
        for dst in rng.choice(num_ranks, size=4, replace=False):
            if int(dst) != src:
                pairs.append((src, int(dst), packets_per_pair * 4096))
    return make_matrix(num_ranks, pairs)


class TestPerfSmoke:
    def test_batched_beats_reference_on_dense_load(self):
        matrix = _dense_matrix(64)
        setup = prepare_simulation(
            matrix, Dragonfly(4, 2, 2), execution_time=2e-4, seed=1
        )
        assert setup.total_packets > 10_000

        t0 = time.perf_counter()
        batched = run_batched(setup)
        t_batched = time.perf_counter() - t0

        t0 = time.perf_counter()
        reference = run_reference(setup)
        t_reference = time.perf_counter() - t0

        assert batched == reference
        assert t_reference / t_batched > 1.0, (
            f"batched kernel slower than reference "
            f"({t_batched:.3f}s vs {t_reference:.3f}s)"
        )

    def test_cache_warm_pass_faster_than_cold(self):
        from repro.cache import cached_matrix, cached_trace

        cache.configure(disable_disk=True)
        cache.clear(memory=True)
        t0 = time.perf_counter()
        trace = cached_trace("LULESH", 64)
        cached_matrix(trace)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        trace = cached_trace("LULESH", 64)
        cached_matrix(trace)
        warm = time.perf_counter() - t0

        assert cold / warm > 1.0, f"warm pass not faster ({cold:.4f}s vs {warm:.4f}s)"
        cache.clear(memory=True)
