"""Out-of-core streaming: chunked emission, spill, and consumer identity.

The contract under test: a :class:`~repro.core.stream.BlockStream` feeds
every consumer — traffic matrices, locality metrics, both simulation
engines — bit-identically to the monolithic in-memory path, regardless of
chunk boundaries (empty chunks, single-row chunks, collectives split
mid-phase), and spill directories survive a process restart memory-mapped.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.apps import SCALE_APPS, app_names, get_app, stream_trace
from repro.collectives.translate import iter_send_batches, iter_stream_send_batches
from repro.comm.matrix import matrix_from_stream, matrix_from_trace
from repro.core.blocks import KIND_P2P_RECV, KIND_P2P_SEND
from repro.core.stream import (
    DEFAULT_CHUNK_BYTES,
    ROW_BYTES,
    BlockStream,
    rows_per_chunk,
    slice_block,
    write_spill,
)
from repro.metrics.locality import rank_distance
from repro.sim.engine import simulate_network, simulate_stream
from repro.validation.base import run_invariants
from repro.validation.invariants import matrices_identical, traces_identical


def _smallest_configs() -> list[tuple[str, int]]:
    return [(name, get_app(name).scales()[0]) for name in app_names()]


def _assert_same_metric(a: float, b: float) -> None:
    if math.isnan(a) or math.isnan(b):
        assert math.isnan(a) and math.isnan(b)
    else:
        assert a == b


# --------------------------------------------------------------- chunking


class TestChunking:
    def test_rows_per_chunk_has_floor_of_one(self):
        assert rows_per_chunk(1) == 1
        assert rows_per_chunk(ROW_BYTES) == 1
        assert rows_per_chunk(10 * ROW_BYTES) == 10
        with pytest.raises(ValueError):
            rows_per_chunk(0)

    def test_rechunk_respects_budget_and_preserves_rows(self):
        trace = get_app("MiniFE").generate(18)
        stream = BlockStream.from_trace(trace).rechunk(2048)
        max_rows = rows_per_chunk(2048)
        blocks = list(stream)
        assert len(blocks) > 1
        assert all(0 < len(b) <= max_rows for b in blocks)
        assert traces_identical(stream.to_trace(), trace)

    def test_empty_chunks_are_dropped(self):
        trace = get_app("LULESH").generate(64)
        block = trace.blocks()[0]
        empty = slice_block(block, 0, 0)
        stream = BlockStream.from_blocks(
            trace.meta,
            [empty, block, empty, empty],
            datatypes=trace.datatypes,
            communicators=trace.communicators,
        )
        assert all(len(b) for b in stream)
        assert matrices_identical(
            matrix_from_stream(stream), matrix_from_trace(trace)
        )

    def test_single_row_chunks(self):
        trace = get_app("LULESH").generate(64)
        stream = BlockStream.from_trace(trace).rechunk(1)
        blocks = list(stream)
        assert all(len(b) == 1 for b in blocks)
        assert len(blocks) == stream.num_rows()
        assert matrices_identical(
            matrix_from_stream(stream), matrix_from_trace(trace)
        )

    def test_collective_spanning_chunk_boundary(self):
        # 3-row chunks split every collective phase across many chunks
        # (each phase emits one row per caller); expansion must not notice.
        trace = get_app("BigFFT").generate(9)
        stream = BlockStream.from_trace(trace).rechunk(3 * ROW_BYTES)
        assert matrices_identical(
            matrix_from_stream(stream), matrix_from_trace(trace)
        )
        assert matrices_identical(
            matrix_from_stream(stream, include_collectives=False),
            matrix_from_trace(trace, include_collectives=False),
        )

    def test_stream_batches_match_trace_batches(self):
        trace = get_app("MiniFE").generate(18)
        stream = BlockStream.from_trace(trace).rechunk(4096)
        expected = [
            (b.src.copy(), b.dst.copy(), b.bytes_per_msg.copy(), b.calls.copy())
            for b in iter_send_batches(trace)
        ]
        streamed = [
            (b.src, b.dst, b.bytes_per_msg, b.calls)
            for b in iter_stream_send_batches(stream)
        ]

        def cat(parts, i):
            return np.concatenate([p[i] for p in parts])

        for i in range(4):
            assert np.array_equal(cat(streamed, i), cat(expected, i))


# ------------------------------------------------- generator-native emission


class TestGeneratorStreaming:
    @pytest.mark.parametrize("name,ranks", _smallest_configs())
    def test_all_apps_bit_identical(self, name, ranks):
        trace = get_app(name).generate(ranks)
        stream = stream_trace(name, ranks, chunk_bytes=4096)
        for include in (True, False):
            expected = matrix_from_trace(trace, include_collectives=include)
            streamed = matrix_from_stream(stream, include_collectives=include)
            assert matrices_identical(streamed, expected)
        p2p_expected = matrix_from_trace(trace, include_collectives=False)
        p2p_streamed = matrix_from_stream(stream, include_collectives=False)
        _assert_same_metric(
            rank_distance(p2p_streamed), rank_distance(p2p_expected)
        )

    def test_stream_rows_match_generated_trace(self):
        trace = get_app("CrystalRouter").generate(10)
        stream = stream_trace("CrystalRouter", 10, chunk_bytes=2048)
        assert stream.num_rows() == sum(len(b) for b in trace.blocks())
        assert traces_identical(stream.to_trace(), trace)

    def test_emit_receives_pairs_never_split(self):
        stream = stream_trace(
            "MiniFE", 18, emit_receives=True, chunk_bytes=2048
        )
        total_sends = total_recvs = 0
        for block in stream:
            sends = int((block.kind == KIND_P2P_SEND).sum())
            recvs = int((block.kind == KIND_P2P_RECV).sum())
            assert sends == recvs
            total_sends += sends
            total_recvs += recvs
        assert total_sends > 0
        trace = get_app("MiniFE").generate(18, emit_receives=True)
        assert traces_identical(stream.to_trace(), trace)

    def test_streaming_is_reiterable(self):
        stream = stream_trace("AMG", 27, chunk_bytes=4096)
        first = matrix_from_stream(stream)
        second = matrix_from_stream(stream)
        assert matrices_identical(first, second)

    def test_compaction_threshold_does_not_change_result(self):
        stream = stream_trace("SNAP", 168, chunk_bytes=2048)
        expected = matrix_from_stream(stream)
        aggressive = matrix_from_stream(stream, compact_rows=1)
        assert matrices_identical(aggressive, expected)


# ------------------------------------------------------------ simulation


class TestStreamingSimulation:
    @pytest.mark.parametrize("name,ranks", [("MiniFE", 18), ("BigFFT", 9)])
    @pytest.mark.parametrize("engine", ["batched", "reference"])
    def test_sim_matches_in_memory_feed(self, name, ranks, engine):
        from repro.topology.configs import config_for

        trace = get_app(name).generate(ranks)
        matrix = matrix_from_trace(trace)
        topology = config_for(ranks).build_torus()
        kwargs = dict(
            execution_time=trace.meta.execution_time,
            volume_scale=max(1.0, matrix.packets.sum() / 4000),
            seed=3,
            engine=engine,
        )
        stream = BlockStream.from_trace(trace).rechunk(4096)
        streamed = simulate_stream(stream, topology, **kwargs)
        direct = simulate_network(matrix, topology, **kwargs)
        assert streamed == direct
        assert np.array_equal(streamed.link_ids, direct.link_ids)
        assert np.array_equal(
            streamed.link_serve_counts, direct.link_serve_counts
        )


# ------------------------------------------------------------------ spill


class TestSpillRestart:
    def test_warm_spill_read_in_fresh_process(self, tmp_path):
        """A spill written here is memory-mapped and bit-identical after a
        process restart (fresh interpreter, cold module state)."""
        trace = get_app("MiniFE").generate(18)
        matrix = matrix_from_trace(trace)
        spill = tmp_path / "minife.spill"
        assert write_spill(BlockStream.from_trace(trace).rechunk(4096), spill)

        code = textwrap.dedent(
            """
            import json, sys
            import numpy as np
            from repro.comm.matrix import matrix_from_trace
            from repro.core.stream import load_spill_trace
            trace = load_spill_trace(sys.argv[1], mmap=True)
            assert all(
                isinstance(b.caller.base, np.memmap) for b in trace.blocks()
            ), "spill columns are not memory-mapped"
            m = matrix_from_trace(trace)
            json.dump(
                [
                    m.num_pairs,
                    int(m.nbytes.sum()),
                    int(m.src.sum()),
                    int(m.dst.sum()),
                    int(m.packets.sum()),
                ],
                sys.stdout,
            )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code, str(spill)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == [
            matrix.num_pairs,
            int(matrix.nbytes.sum()),
            int(matrix.src.sum()),
            int(matrix.dst.sum()),
            int(matrix.packets.sum()),
        ]


# ---------------------------------------------------------- dumpi streaming


_DUMPI_SEND = textwrap.dedent(
    """\
    MPI_Send entering at walltime 100.50, cputime 0.2 seconds in thread 0.
    int count=4096
    MPI_Datatype datatype=2 (MPI_CHAR)
    int dest=3
    int tag=7
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Send returning at walltime 100.60, cputime 0.3 seconds in thread 0.
    """
)

_DUMPI_RECV = textwrap.dedent(
    """\
    MPI_Recv entering at walltime 101.00, cputime 0.4 seconds in thread 0.
    int count=128
    MPI_Datatype datatype=11 (MPI_DOUBLE)
    int source=0
    int tag=7
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Recv returning at walltime 101.10, cputime 0.5 seconds in thread 0.
    """
)

_DUMPI_ALLREDUCE = textwrap.dedent(
    """\
    MPI_Allreduce entering at walltime 102.00, cputime 0.6 seconds in thread 0.
    int count=16
    MPI_Datatype datatype=11 (MPI_DOUBLE)
    MPI_Op op=1 (MPI_SUM)
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Allreduce returning at walltime 102.20, cputime 0.7 seconds in thread 0.
    """
)

_DUMPI_SUBCOMM = textwrap.dedent(
    """\
    MPI_Bcast entering at walltime 103.00, cputime 0.8 seconds in thread 0.
    int count=4
    MPI_Datatype datatype=4 (MPI_INT)
    int root=0
    MPI_Comm comm=5 (user-defined-comm)
    MPI_Bcast returning at walltime 103.10, cputime 0.9 seconds in thread 0.
    """
)


class TestDumpiStreaming:
    def _write_dir(self, directory, bodies):
        for rank, body in enumerate(bodies):
            (directory / f"dumpi-2020-{rank:04d}.txt").write_text(body)

    @pytest.fixture()
    def dumpi_dir(self, tmp_path):
        self._write_dir(
            tmp_path,
            [
                _DUMPI_SEND + _DUMPI_ALLREDUCE,
                _DUMPI_ALLREDUCE,
                _DUMPI_SEND + _DUMPI_SEND + _DUMPI_ALLREDUCE,
                _DUMPI_RECV + _DUMPI_ALLREDUCE,
            ],
        )
        return tmp_path

    def test_matrix_matches_in_memory_loader(self, dumpi_dir):
        from repro.dumpi.ascii_dumpi import (
            load_dumpi2ascii_dir,
            stream_dumpi2ascii_dir,
        )

        trace = load_dumpi2ascii_dir(dumpi_dir, app="real")
        stream = stream_dumpi2ascii_dir(dumpi_dir, app="real")
        assert stream.meta.num_ranks == trace.meta.num_ranks
        assert stream.meta.execution_time == trace.meta.execution_time
        assert stream.num_rows() == sum(len(b) for b in trace.blocks())
        for include in (True, False):
            assert matrices_identical(
                matrix_from_stream(stream, include_collectives=include),
                matrix_from_trace(trace, include_collectives=include),
            )

    def test_single_row_chunks_still_identical(self, dumpi_dir):
        from repro.dumpi.ascii_dumpi import (
            load_dumpi2ascii_dir,
            stream_dumpi2ascii_dir,
        )

        trace = load_dumpi2ascii_dir(dumpi_dir, app="real")
        stream = stream_dumpi2ascii_dir(dumpi_dir, app="real", chunk_bytes=1)
        assert all(len(b) == 1 for b in stream)
        assert matrices_identical(
            matrix_from_stream(stream), matrix_from_trace(trace)
        )

    def test_times_normalized_to_zero(self, dumpi_dir):
        from repro.dumpi.ascii_dumpi import stream_dumpi2ascii_dir

        stream = stream_dumpi2ascii_dir(dumpi_dir, app="real")
        t_enter = np.concatenate([b.t_enter for b in stream])
        assert t_enter.min() == 0.0

    def test_strict_subcommunicator_raises_eagerly(self, tmp_path):
        from repro.dumpi.ascii_dumpi import (
            UnsupportedCommunicatorError,
            stream_dumpi2ascii_dir,
        )

        self._write_dir(tmp_path, [_DUMPI_SEND, _DUMPI_SUBCOMM])
        with pytest.raises(UnsupportedCommunicatorError):
            stream_dumpi2ascii_dir(tmp_path, app="real")


# ------------------------------------------------------------ invariant


class TestStreamingInvariant:
    def test_registered_in_catalogue(self):
        from repro.validation.base import all_invariants

        names = [inv.name for inv in all_invariants()]
        assert "streaming-equivalence" in names

    @pytest.fixture()
    def ctx(self):
        from repro.topology.configs import config_for
        from repro.validation.suite import build_static_context

        trace = get_app("BigFFT").generate(9)
        return build_static_context(trace, config_for(9).build_torus())

    def test_clean_context_passes(self, ctx):
        assert run_invariants(ctx, names=["streaming-equivalence"]) == []

    def test_detects_matrix_divergence(self, ctx):
        # BigFFT is collective-dominated, so passing the full matrix off
        # as the p2p one must trip the streamed-p2p comparison.
        ctx.p2p_matrix = ctx.full_matrix
        violations = run_invariants(ctx, names=["streaming-equivalence"])
        assert violations
        assert all(v.severity == "error" for v in violations)


# ------------------------------------------------------- peak RSS + bench


class TestPeakRss:
    def test_peak_rss_measured_on_posix(self):
        from repro import timings

        peak = timings.peak_rss_bytes()
        assert peak is not None
        assert peak > 10 * 1024 * 1024  # a running interpreter beats 10 MB

    def test_summary_reports_peak_rss(self):
        from repro import timings

        timings.enable(reset_counters=True)
        try:
            with timings.stage("trace"):
                pass
        finally:
            timings.disable()
        assert "peak RSS" in timings.summary()


class TestScaleBench:
    def test_scalehalo_registered_out_of_band(self):
        assert "ScaleHalo3D" in SCALE_APPS
        assert get_app("ScaleHalo3D").name == "ScaleHalo3D"
        assert "ScaleHalo3D" not in app_names()

    def test_scale_pipeline_smoke(self):
        from repro.bench import run_scale_pipeline

        result = run_scale_pipeline(ranks=4096, chunk_bytes=DEFAULT_CHUNK_BYTES)
        assert result["rows"] > 0
        assert result["chunks"] >= 1
        assert result["pairs"] > 4096  # 6-stencil halo plus allreduce
        assert result["peak_rss_mb"] is None or result["peak_rss_mb"] > 0

    def test_scale_bench_subprocess_ratio(self):
        from repro.bench import run_scale_bench

        data = run_scale_bench(ranks=4096, rlimit_gb=4.0)
        summary = data["summary"]
        assert summary["rss_ratio"] is not None
        assert summary["rss_ratio"] < 1.0
        assert data["scale"]["ranks"] == 4096
        assert summary["rows_per_s"] > 0
