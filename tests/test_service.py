"""Tests for the sharded sweep service (repro.service).

Covers the identity layer (cell keys, spec round-trip), the journal's
crash-resume semantics (torn tails, duplicate entries), the scheduler's
affinity/random placement, and the service end to end: bit-identical
records vs ``run_sweep`` under any worker count, cross-job dedup, cancel,
a SIGKILL'd worker mid-job, and a SIGKILL'd *server* resumed from its
journal in a fresh process.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cache
from repro.analysis.sweep import SweepSpec, run_sweep
from repro.service.cells import (
    affinity_token,
    cell_key,
    expand_cells,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.client import ServiceError, SweepClient
from repro.service.journal import JOURNAL_VERSION, JobJournal
from repro.service.scheduler import CellScheduler
from repro.service.server import SweepService

SMALL_SPEC = SweepSpec(
    apps=(("LULESH", 64),),
    topologies=("torus3d", "fattree"),
    mappings=("consecutive", "bisection"),
    payloads=(4096,),
)


def small_reference_records():
    cache.clear(memory=True)
    return run_sweep(SMALL_SPEC)


# ---------------------------------------------------------------- identity


class TestCells:
    def test_spec_round_trips_exactly(self):
        spec = SweepSpec(
            apps=(("LULESH", 64), ("AMG", 216)),
            topologies=("dragonfly",),
            mappings=("greedy",),
            payloads=(1024, 4096),
            bandwidths=(6e9, 12e9),
            routings=("minimal", "ecmp"),
            include_collectives=False,
            seed=3,
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_spec_field_rejected(self):
        data = spec_to_dict(SMALL_SPEC)
        data["workers"] = 4
        with pytest.raises(ValueError, match="unknown sweep spec fields"):
            spec_from_dict(data)

    def test_cell_key_covers_shared_fields(self):
        point = SMALL_SPEC.points()[0]
        base = cell_key(SMALL_SPEC, point)
        assert base == cell_key(SMALL_SPEC, point)  # deterministic
        import dataclasses

        for change in (
            {"seed": 1},
            {"bandwidths": (6e9,)},
            {"include_collectives": False},
        ):
            other = dataclasses.replace(SMALL_SPEC, **change)
            assert cell_key(other, point) != base, change

    def test_affinity_token_groups_by_trace(self):
        points = SMALL_SPEC.points()
        tokens = {affinity_token(SMALL_SPEC, p) for p in points}
        assert tokens == {"LULESH:64:0"}  # one trace -> one group

    def test_expand_cells_collapses_duplicates(self):
        doubled = SweepSpec(
            apps=(("LULESH", 64), ("LULESH", 64)),
            topologies=("torus3d",),
            mappings=("consecutive",),
        )
        cells, collapsed = expand_cells(doubled)
        assert collapsed == 1
        assert len(cells) == 1
        assert len({c.key for c in cells}) == len(cells)

    def test_run_sweep_warns_once_about_collapsed_cells(self, caplog):
        doubled = SweepSpec(
            apps=(("LULESH", 64),),
            topologies=("torus3d", "torus3d"),
            mappings=("consecutive",),
        )
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            records = run_sweep(doubled)
        messages = [r for r in caplog.records if "collapsed" in r.message]
        assert len(messages) == 1
        assert len(records) == 1  # evaluated once, recorded once


# ---------------------------------------------------------------- journal


class TestJournal:
    def test_round_trip_and_first_occurrence_wins(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        with JobJournal(path, batch=1) as journal:
            journal.append("aa", [{"x": 1}])
            journal.append("bb", [{"x": 2.5}])
            journal.append("aa", [{"x": 999}])  # duplicate: ignored on replay
        entries, good_end = JobJournal.replay(path)
        assert entries == {"aa": [{"x": 1}], "bb": [{"x": 2.5}]}
        assert good_end == path.stat().st_size

    def test_torn_tail_is_truncated_and_resumed(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        with JobJournal(path, batch=1) as journal:
            journal.append("aa", [{"x": 1}])
            journal.append("bb", [{"x": 2}])
        clean_size = path.stat().st_size
        with path.open("ab") as fh:  # writer died mid-append
            fh.write(b'{"v": 1, "cell": "cc", "rec')
        entries, good_end = JobJournal.replay(path)
        assert set(entries) == {"aa", "bb"}
        assert good_end == clean_size

        journal = JobJournal(path, batch=1)
        journal.open(truncate_to=good_end)
        journal.append("cc", [{"x": 3}])
        journal.close()
        entries, _ = JobJournal.replay(path)
        assert set(entries) == {"aa", "bb", "cc"}

    def test_garbage_line_stops_replay(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        good = json.dumps({"v": JOURNAL_VERSION, "cell": "aa", "records": []})
        path.write_bytes(good.encode() + b"\nnot json\n" + good.encode() + b"\n")
        entries, good_end = JobJournal.replay(path)
        assert set(entries) == {"aa"}
        assert good_end == len(good.encode()) + 1

    def test_missing_file_is_empty(self, tmp_path):
        entries, good_end = JobJournal.replay(tmp_path / "absent.jsonl")
        assert entries == {} and good_end == 0

    def test_batching_defers_flush(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        journal = JobJournal(path, batch=100)
        journal.open()
        journal.append("aa", [])
        assert JobJournal.replay(path)[0] == {}  # buffered, not yet on disk
        journal.flush()
        assert set(JobJournal.replay(path)[0]) == {"aa"}
        journal.close()


# --------------------------------------------------------------- scheduler


class TestScheduler:
    def test_affinity_is_sticky_per_token(self):
        sched = CellScheduler("affinity")
        for wid in range(3):
            sched.add_worker(wid)
        first = sched.assign("tokA", "k1")
        assert sched.assign("tokA", "k2") == first
        other = sched.assign("tokB", "k3")
        assert other != first  # least-loaded, not the busy one
        assert sched.assign("tokA", "k4") == first

    def test_affinity_balances_new_tokens_by_load(self):
        sched = CellScheduler("affinity")
        sched.add_worker(0)
        sched.add_worker(1)
        assert sched.assign("a", "k1") == 0
        assert sched.assign("b", "k2") == 1
        sched.release(0)
        assert sched.assign("c", "k3") == 0

    def test_random_mode_is_stable_by_key_and_ignores_tokens(self):
        sched = CellScheduler("random")
        for wid in range(4):
            sched.add_worker(wid)
        a = sched.assign("tok", "key-1")
        sched.release(a)
        assert sched.assign("other-tok", "key-1") == a
        spread = {sched.assign("tok", f"key-{i}") for i in range(40)}
        assert len(spread) > 1

    def test_remove_worker_rehomes_tokens(self):
        sched = CellScheduler("affinity")
        sched.add_worker(0)
        sched.add_worker(1)
        assert sched.assign("a", "k1") == 0
        sched.remove_worker(0)
        assert sched.assign("a", "k2") == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler mode"):
            CellScheduler("round-robin")


# ------------------------------------------------------------- service e2e


def _run_service(coro_fn, tmp_path, **service_kwargs):
    """Run ``await coro_fn(svc)`` against a started service, then stop it."""

    async def _main():
        svc = SweepService(tmp_path / "state", **service_kwargs)
        await svc.start()
        try:
            return await coro_fn(svc)
        finally:
            await svc.stop()

    return asyncio.run(_main())


class TestServiceEndToEnd:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("scheduler", ["affinity", "random"])
    def test_records_bit_identical_to_run_sweep(
        self, tmp_path, workers, scheduler
    ):
        reference = small_reference_records()

        async def scenario(svc):
            job = svc.submit(spec_to_dict(SMALL_SPEC))["job"]
            assert await svc.wait(job) == "done"
            return svc.results(job)

        records = _run_service(
            scenario, tmp_path, workers=workers, scheduler=scheduler
        )
        assert records == reference

    def test_concurrent_identical_jobs_share_computation(self, tmp_path):
        async def scenario(svc):
            spec = spec_to_dict(SMALL_SPEC)
            job_a = svc.submit(spec)["job"]
            job_b = svc.submit(spec)["job"]
            assert await svc.wait(job_a) == "done"
            assert await svc.wait(job_b) == "done"
            return (
                svc.results(job_a),
                svc.results(job_b),
                svc.stats()["counts"],
            )

        records_a, records_b, counts = _run_service(scenario, tmp_path)
        assert records_a == records_b
        assert counts["cells_computed"] == len(SMALL_SPEC.points())
        assert counts["dedup_inflight"] == len(SMALL_SPEC.points())

    def test_resubmit_after_done_hits_record_cache(self, tmp_path):
        async def scenario(svc):
            spec = spec_to_dict(SMALL_SPEC)
            first = svc.submit(spec)["job"]
            assert await svc.wait(first) == "done"
            computed = svc.stats()["counts"]["cells_computed"]
            second = svc.submit(spec)["job"]
            assert await svc.wait(second) == "done"
            counts = svc.stats()["counts"]
            assert counts["cells_computed"] == computed  # nothing recomputed
            assert counts["dedup_warm"] == len(SMALL_SPEC.points())
            return svc.results(first), svc.results(second)

        first, second = _run_service(scenario, tmp_path)
        assert first == second

    def test_cancel_stops_notifications(self, tmp_path):
        async def scenario(svc):
            job = svc.submit(spec_to_dict(SMALL_SPEC))["job"]
            summary = svc.cancel(job)
            assert summary["status"] == "cancelled"
            assert await svc.wait(job) == "cancelled"
            with pytest.raises(RuntimeError, match="cancelled"):
                svc.results(job)

        _run_service(scenario, tmp_path)

    def test_sigkilled_worker_is_respawned_and_job_completes(self, tmp_path):
        reference = small_reference_records()

        async def scenario(svc):
            job = svc.submit(spec_to_dict(SMALL_SPEC))["job"]
            victim = svc.pool.handles()[0]
            # Wait for the worker to exist, then kill it mid-queue.
            for _ in range(100):
                if victim.pid is not None:
                    break
                await asyncio.sleep(0.05)
            assert victim.pid is not None
            os.kill(victim.pid, signal.SIGKILL)
            assert await svc.wait(job) == "done"
            assert svc.pool.respawns >= 1
            return svc.results(job)

        records = _run_service(scenario, tmp_path, workers=2)
        assert records == reference


SERVER_SPEC = SweepSpec(
    apps=(("LULESH", 64),),
    topologies=("torus3d", "fattree", "dragonfly"),
    mappings=("consecutive", "bisection", "greedy"),
    payloads=(1024, 4096),
)


def _spawn_server(state: Path, socket_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state", str(state),
            "--socket", str(socket_path),
            "--workers", "2",
            "--journal-batch", "1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestServerCrashResume:
    def test_sigkilled_server_resumes_from_journal(self, tmp_path):
        state = tmp_path / "state"
        socket_path = tmp_path / "svc.sock"
        server = _spawn_server(state, socket_path)
        try:
            client = SweepClient.wait_ready(socket_path, timeout=60.0)
            job = client.submit(spec_to_dict(SERVER_SPEC))["job"]

            # Follow the stream until a few cells are journaled, then
            # SIGKILL the whole server (workers die with it: daemons).
            seen = 0
            for event in client.attach(job):
                if event.get("event") == "cell":
                    seen += 1
                    if seen >= 3:
                        break
            assert seen >= 3
            server.kill()
            server.wait(timeout=10)

            restarted = _spawn_server(state, socket_path)
            try:
                client = SweepClient.wait_ready(socket_path, timeout=60.0)
                end = client.wait(job)
                assert end["status"] == "done"
                status = client.status(job)
                # Journaled cells were restored, not recomputed.
                assert status["counts"]["restored"] >= 3
                computed = client.stats()["counts"]["cells_computed"]
                assert status["counts"]["restored"] + computed >= len(
                    SERVER_SPEC.points()
                )
                records = client.results(job)
            finally:
                _shutdown(client, restarted)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

        cache.clear(memory=True)
        assert records == run_sweep(SERVER_SPEC)


def _shutdown(client: SweepClient, proc: subprocess.Popen) -> None:
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


class TestSocketApi:
    def test_unary_ops_and_errors_over_socket(self, tmp_path):
        state = tmp_path / "state"
        socket_path = tmp_path / "svc.sock"
        server = _spawn_server(state, socket_path)
        try:
            client = SweepClient.wait_ready(socket_path, timeout=60.0)
            assert client.ping()
            assert client.jobs() == []
            with pytest.raises(ServiceError, match="unknown job"):
                client.status("job-9999")

            resp = client.submit(spec_to_dict(SMALL_SPEC))
            assert resp["cells"] == len(SMALL_SPEC.points())
            end = client.wait(resp["job"])
            assert end["status"] == "done"
            assert len(client.results(resp["job"])) == resp["cells"]
            jobs = client.jobs()
            assert [j["job"] for j in jobs] == [resp["job"]]
            assert jobs[0]["status"] == "done"

            stats = client.stats()
            assert stats["counts"]["cells_computed"] == resp["cells"]
            assert len(stats["workers"]) == 2
        finally:
            _shutdown(client, server)
        # The server removed its socket on clean shutdown.
        deadline = time.monotonic() + 5
        while socket_path.exists() and time.monotonic() < deadline:
            time.sleep(0.1)
        assert not socket_path.exists()
