"""Unit tests for communicators and the communicator table."""

import pytest

from repro.core.communicator import (
    CartesianCommunicator,
    Communicator,
    CommunicatorTable,
    WORLD_NAME,
)


class TestCommunicator:
    def test_world_identity_mapping(self):
        comm = Communicator.world(5)
        assert comm.size == 5
        assert comm.is_world_like
        assert comm.to_global(3) == 3
        assert comm.to_local(4) == 4

    def test_subgroup_translation(self):
        comm = Communicator("SUB", (2, 5, 7))
        assert comm.to_global(1) == 5
        assert comm.to_local(7) == 2
        assert not comm.is_world_like

    def test_translation_errors(self):
        comm = Communicator("SUB", (2, 5))
        with pytest.raises(ValueError):
            comm.to_global(2)
        with pytest.raises(ValueError):
            comm.to_local(3)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            Communicator("BAD", (1, 1, 2))

    def test_negative_members_rejected(self):
        with pytest.raises(ValueError):
            Communicator("BAD", (0, -1))

    def test_world_needs_positive_size(self):
        with pytest.raises(ValueError):
            Communicator.world(0)

    def test_iteration_and_len(self):
        comm = Communicator("S", (3, 1))
        assert list(comm) == [3, 1]
        assert len(comm) == 2


class TestCartesian:
    def test_coords_row_major(self):
        comm = CartesianCommunicator("CART", tuple(range(12)), dims=(3, 4))
        assert comm.coords_of(0) == (0, 0)
        assert comm.coords_of(5) == (1, 1)
        assert comm.coords_of(11) == (2, 3)

    def test_rank_of_roundtrip(self):
        comm = CartesianCommunicator("CART", tuple(range(24)), dims=(2, 3, 4))
        for rank in range(24):
            assert comm.rank_of(comm.coords_of(rank)) == rank

    def test_periodic_wrap(self):
        comm = CartesianCommunicator(
            "CART", tuple(range(6)), dims=(2, 3), periods=(True, True)
        )
        assert comm.rank_of((2, 4)) == comm.rank_of((0, 1))

    def test_non_periodic_out_of_bounds(self):
        comm = CartesianCommunicator("CART", tuple(range(6)), dims=(2, 3))
        with pytest.raises(ValueError):
            comm.rank_of((2, 0))

    def test_dims_must_multiply_out(self):
        with pytest.raises(ValueError):
            CartesianCommunicator("CART", tuple(range(5)), dims=(2, 3))

    def test_is_not_world_like_when_permuted(self):
        comm = CartesianCommunicator("CART", (3, 2, 1, 0), dims=(4,))
        assert not comm.is_world_like


class TestCommunicatorTable:
    def test_world_registered_by_default(self):
        table = CommunicatorTable.for_world(4)
        assert WORLD_NAME in table
        assert table.get(WORLD_NAME).size == 4
        assert table.uses_only_global

    def test_add_sub_communicator(self):
        table = CommunicatorTable.for_world(8)
        table.add(Communicator("SUB", (0, 2, 4)))
        assert "SUB" in table
        assert not table.uses_only_global  # paper exclusion criterion

    def test_world_like_subset_does_not_trip_criterion(self):
        table = CommunicatorTable.for_world(8)
        table.add(Communicator("PREFIX", (0, 1, 2)))
        assert table.uses_only_global

    def test_members_outside_world_rejected(self):
        table = CommunicatorTable.for_world(4)
        with pytest.raises(ValueError):
            table.add(Communicator("BAD", (2, 9)))

    def test_conflicting_redefinition_rejected(self):
        table = CommunicatorTable.for_world(4)
        table.add(Communicator("S", (0, 1)))
        with pytest.raises(ValueError):
            table.add(Communicator("S", (0, 2)))

    def test_unknown_lookup_raises(self):
        table = CommunicatorTable.for_world(2)
        with pytest.raises(KeyError):
            table.get("NOPE")

    def test_names_sorted(self):
        table = CommunicatorTable.for_world(4)
        table.add(Communicator("A", (0,)))
        assert table.names() == sorted(table.names())
