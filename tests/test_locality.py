"""Tests for rank distance / rank locality (paper Eq. 1-2, §4.1.1)."""

import math

import numpy as np
import pytest

from repro.metrics.locality import (
    distance_histogram,
    pair_distances,
    rank_distance,
    rank_locality,
)

from helpers import make_matrix


class TestPairDistances:
    def test_self_pairs_excluded(self):
        m = make_matrix(4, [(0, 0, 100), (0, 1, 50)])
        dist, w = pair_distances(m)
        assert dist.tolist() == [1]
        assert w.tolist() == [50]

    def test_distance_is_absolute(self):
        m = make_matrix(5, [(4, 1, 10), (1, 4, 10)])
        dist, _ = pair_distances(m)
        assert dist.tolist() == [3, 3]


class TestRankDistance:
    def test_neighbour_traffic_distance_one(self):
        m = make_matrix(8, [(r, r + 1, 100) for r in range(7)])
        assert rank_distance(m) <= 1.0
        assert rank_locality(m) == 1.0

    def test_weighted_by_volume(self):
        # 95% of bytes at distance 1, 5% at distance 7: the 90% quantile
        # stays near 1.
        m = make_matrix(8, [(0, 1, 9500), (0, 7, 500)])
        assert rank_distance(m) < 2.0

    def test_far_heavy_traffic_pushes_quantile(self):
        m = make_matrix(8, [(0, 1, 100), (0, 7, 9900)])
        assert rank_distance(m) > 5.0
        assert rank_locality(m) < 0.2

    def test_empty_matrix_is_nan(self):
        m = make_matrix(4, [])
        assert math.isnan(rank_distance(m))
        assert math.isnan(rank_locality(m))

    def test_self_only_traffic_is_nan(self):
        m = make_matrix(4, [(1, 1, 100)])
        assert math.isnan(rank_distance(m))

    def test_share_parameter(self):
        m = make_matrix(10, [(0, 1, 50), (0, 9, 50)])
        assert rank_distance(m, share=0.4) < rank_distance(m, share=0.95)

    def test_locality_capped_at_one(self):
        m = make_matrix(4, [(0, 1, 100), (1, 2, 100)])
        assert rank_locality(m) <= 1.0


class TestHistogram:
    def test_volume_per_distance(self):
        m = make_matrix(6, [(0, 1, 10), (1, 2, 20), (0, 3, 5)])
        dists, vols = distance_histogram(m)
        assert dists.tolist() == [1, 3]
        assert vols.tolist() == [30, 5]

    def test_empty(self):
        dists, vols = distance_histogram(make_matrix(3, []))
        assert len(dists) == 0 and len(vols) == 0

    def test_histogram_total_matches_offdiagonal_bytes(self, lulesh64_p2p):
        _, vols = distance_histogram(lulesh64_p2p)
        off = lulesh64_p2p.without_self_traffic()
        assert vols.sum() == off.total_bytes


class TestOnRealTrace:
    def test_lulesh_locality_band(self, lulesh64_p2p):
        # paper: LULESH@64 rank distance 15.7 (x-face offset 16)
        d = rank_distance(lulesh64_p2p)
        assert 12.0 <= d <= 20.0

    def test_quantile_is_fractional(self, lulesh64_p2p):
        d = rank_distance(lulesh64_p2p)
        assert d == pytest.approx(d)  # finite
        assert not math.isnan(d)
