"""The pluggable routing subsystem: ECMP, Valiant, D-mod-k, UGAL.

Three layers of guarantees are pinned here:

- **structural** — every policy on every topology emits link sequences that
  form a valid walk from source node to destination node (checked via the
  Eulerian-walk characterization in :mod:`repro.routing.validate`), with
  zero hops exactly for same-node pairs;
- **bit-identity** — ``minimal`` is byte-for-byte the topology's built-in
  deterministic routing (so ``routing="minimal"`` defaults change nothing),
  and ``dmodk`` coincides with it on the fat tree whose lane choice *is*
  destination-mod-k;
- **semantics** — Valiant's link-level hop counts match the pre-existing
  hops-only ``Dragonfly.valiant_hops`` oracle seed for seed, Valiant paths
  are longer than minimal on cross-group traffic, UGAL spreads an
  adversarial single-hot-group matrix far below minimal's peak link load,
  and both simulator engines stay bit-identical under every policy.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.routing import ROUTINGS, get_policy
from repro.routing.base import RoutingPolicy
from repro.routing.minimal import MinimalRouting
from repro.routing.validate import link_endpoints, walks_are_valid
from repro.sim.common import prepare_simulation
from repro.sim.engine import run_batched
from repro.sim.reference import run_reference
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D

from helpers import make_matrix

TOPOLOGIES = {
    "torus3d": lambda: Torus3D((4, 3, 2)),
    "fattree": lambda: FatTree(4, 3),
    "dragonfly": lambda: Dragonfly(4, 2, 2),
}


def random_pairs(topology, n=300, seed=7):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, topology.num_nodes, size=n)
    dst = rng.integers(0, topology.num_nodes, size=n)
    # guarantee at least a few same-node pairs for the 0-hop property
    src[:3] = dst[:3]
    return src, dst


def assert_same_incidence(a, b):
    assert np.array_equal(a.pair_index, b.pair_index)
    assert np.array_equal(a.link_id, b.link_id)


class TestRegistry:
    def test_known_policies(self):
        assert ROUTINGS == (
            "minimal",
            "ecmp",
            "valiant",
            "dmodk",
            "ugal",
            "interference_aware",
        )

    def test_get_policy_passes_instances_through(self):
        policy = MinimalRouting()
        assert get_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="minimal"):
            get_policy("shortest")

    def test_capability_flags(self):
        flags = {
            name: (get_policy(name).randomized, get_policy(name).load_aware)
            for name in ROUTINGS
        }
        assert flags == {
            "minimal": (False, False),
            "ecmp": (True, False),
            "valiant": (True, False),
            "dmodk": (False, False),
            "ugal": (True, True),
            "interference_aware": (True, True),
        }

    def test_cache_token_carries_seed_only_when_randomized(self):
        assert get_policy("minimal", seed=5).cache_token() == ("minimal",)
        assert get_policy("ecmp", seed=5).cache_token() == ("ecmp", 5)


@pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
@pytest.mark.parametrize("routing", ROUTINGS)
class TestWalkProperties:
    """Every policy x topology combination emits valid walks."""

    def test_routes_are_valid_walks(self, routing, kind):
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        policy = get_policy(routing, seed=3)
        inc = policy.route_incidence(topology, src, dst)
        ok = walks_are_valid(topology, src, dst, inc)
        assert ok.all(), f"invalid walks at pairs {np.flatnonzero(~ok)[:5]}"

    def test_zero_hops_iff_same_node(self, routing, kind):
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        policy = get_policy(routing, seed=3)
        hops = policy.hops_array(topology, src, dst)
        np.testing.assert_array_equal(hops == 0, src == dst)

    def test_hops_array_counts_incidence_rows(self, routing, kind):
        """The closed-form hops shortcuts agree with the actual routes."""
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        policy = get_policy(routing, seed=3)
        inc = policy.route_incidence(topology, src, dst)
        counted = np.bincount(inc.pair_index, minlength=len(src))
        np.testing.assert_array_equal(
            policy.hops_array(topology, src, dst), counted
        )

    def test_link_ids_in_range(self, routing, kind):
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        inc = get_policy(routing, seed=3).route_incidence(topology, src, dst)
        assert inc.link_id.min(initial=0) >= 0
        assert inc.link_id.max(initial=0) < topology.num_links
        # every link decodes to two distinct endpoint vertices
        u, v = link_endpoints(topology, inc.link_id)
        assert (u != v).all()


class TestMinimalBitIdentity:
    @pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
    def test_matches_topology_builtin(self, kind):
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        direct = topology.route_incidence(src, dst)
        via = get_policy("minimal").route_incidence(topology, src, dst)
        assert_same_incidence(via, direct)

    def test_seed_never_changes_minimal(self):
        topology = Torus3D((4, 3, 2))
        src, dst = random_pairs(topology)
        a = get_policy("minimal", seed=0).route_incidence(topology, src, dst)
        b = get_policy("minimal", seed=9).route_incidence(topology, src, dst)
        assert_same_incidence(a, b)


class TestECMP:
    @pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
    def test_hops_equal_minimal(self, kind):
        """ECMP spreads over *equal-cost* paths — never longer than minimal."""
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        np.testing.assert_array_equal(
            get_policy("ecmp", seed=1).hops_array(topology, src, dst),
            topology.hops_array(src, dst),
        )

    @pytest.mark.parametrize("kind", ["torus3d", "fattree"])
    def test_spreads_over_distinct_paths(self, kind):
        """Where equal-cost multipath exists, ECMP must actually use it."""
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        minimal = get_policy("minimal").route_incidence(topology, src, dst)
        ecmp = get_policy("ecmp", seed=1).route_incidence(topology, src, dst)
        assert not np.array_equal(
            np.sort(ecmp.link_id), np.sort(minimal.link_id)
        )

    def test_dragonfly_degenerates_to_minimal(self):
        """The dragonfly minimal path is unique — nothing to spread over."""
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = random_pairs(topology)
        assert_same_incidence(
            get_policy("ecmp", seed=1).route_incidence(topology, src, dst),
            topology.route_incidence(src, dst),
        )

    def test_deterministic_per_seed(self):
        topology = TOPOLOGIES["fattree"]()
        src, dst = random_pairs(topology)
        a = get_policy("ecmp", seed=4).route_incidence(topology, src, dst)
        b = get_policy("ecmp", seed=4).route_incidence(topology, src, dst)
        assert_same_incidence(a, b)
        c = get_policy("ecmp", seed=5).route_incidence(topology, src, dst)
        assert not np.array_equal(c.link_id, a.link_id)


class TestDModK:
    def test_identical_to_minimal_on_fattree(self):
        """The built-in fat-tree lane choice *is* destination-mod-k."""
        topology = TOPOLOGIES["fattree"]()
        src, dst = random_pairs(topology)
        assert_same_incidence(
            get_policy("dmodk").route_incidence(topology, src, dst),
            topology.route_incidence(src, dst),
        )

    @pytest.mark.parametrize("kind", ["torus3d", "dragonfly"])
    def test_falls_back_to_minimal_elsewhere(self, kind):
        topology = TOPOLOGIES[kind]()
        src, dst = random_pairs(topology)
        assert_same_incidence(
            get_policy("dmodk").route_incidence(topology, src, dst),
            topology.route_incidence(src, dst),
        )


class TestValiantOracle:
    """The link-level engine vs the pre-existing hops-only surrogate."""

    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_hops_match_valiant_hops_seed_for_seed(self, seed):
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = random_pairs(topology, n=500)
        oracle = topology.valiant_hops(
            src, dst, rng=np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(
            get_policy("valiant", seed=seed).hops_array(topology, src, dst),
            oracle,
        )

    def test_longer_than_minimal_on_cross_group_traffic(self):
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = random_pairs(topology, n=500)
        cross = topology.crosses_groups(src, dst)
        assert cross.any()
        val = get_policy("valiant", seed=0).hops_array(topology, src, dst)
        minimal = topology.hops_array(src, dst)
        assert val[cross].mean() > minimal[cross].mean()
        # intra-group traffic stays minimal
        np.testing.assert_array_equal(val[~cross], minimal[~cross])

    def test_torus_detour_through_intermediate(self):
        topology = TOPOLOGIES["torus3d"]()
        src, dst = random_pairs(topology, n=500)
        val = get_policy("valiant", seed=0).hops_array(topology, src, dst)
        minimal = topology.hops_array(src, dst)
        assert val.mean() > minimal.mean()

    def test_two_group_dragonfly_falls_back_to_minimal(self):
        """No valid intermediate group exists below three groups."""
        topology = Dragonfly(1, 1, 2)
        assert topology.num_groups == 2
        src, dst = random_pairs(topology, n=12)
        assert_same_incidence(
            get_policy("valiant", seed=0).route_incidence(topology, src, dst),
            topology.route_incidence(src, dst),
        )

    def test_fattree_valiant_matches_minimal_hops(self):
        """Random-core Valiant on a folded Clos never lengthens paths."""
        topology = TOPOLOGIES["fattree"]()
        src, dst = random_pairs(topology)
        np.testing.assert_array_equal(
            get_policy("valiant", seed=0).hops_array(topology, src, dst),
            topology.hops_array(src, dst),
        )


class TestUGAL:
    def adversarial(self, topology):
        """Every node of group 0 talks to every node of group 1."""
        per_group = topology.num_nodes // topology.num_groups
        g0 = np.arange(per_group, dtype=np.int64)
        g1 = g0 + per_group
        src, dst = np.meshgrid(g0, g1, indexing="ij")
        return src.ravel(), dst.ravel()

    def test_spreads_hot_group_traffic(self):
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = self.adversarial(topology)
        weights = np.ones(len(src))
        minimal = get_policy("minimal").route_incidence(topology, src, dst)
        ugal = get_policy("ugal", seed=0).route_incidence(
            topology, src, dst, pair_weights=weights
        )
        _, min_loads = minimal.link_loads(weights)
        _, ugal_loads = ugal.link_loads(weights)
        assert ugal_loads.max() < min_loads.max()

    def test_falls_back_to_minimal_off_dragonfly(self):
        for kind in ("torus3d", "fattree"):
            topology = TOPOLOGIES[kind]()
            src, dst = random_pairs(topology)
            assert_same_incidence(
                get_policy("ugal", seed=0).route_incidence(topology, src, dst),
                topology.route_incidence(src, dst),
            )

    def test_uniform_weights_default(self):
        """Omitting pair_weights means unit weight per pair."""
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = self.adversarial(topology)
        explicit = get_policy("ugal", seed=0).route_incidence(
            topology, src, dst, pair_weights=np.ones(len(src))
        )
        implicit = get_policy("ugal", seed=0).route_incidence(
            topology, src, dst
        )
        assert_same_incidence(explicit, implicit)

    def test_weight_shape_mismatch_rejected(self):
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = self.adversarial(topology)
        with pytest.raises(ValueError, match="pair_weights"):
            get_policy("ugal").route_incidence(
                topology, src, dst, pair_weights=np.ones(3)
            )


class TestSimulatorEquivalencePerPolicy:
    """Both engines consume one SimSetup, so bit-identity holds per policy."""

    @pytest.mark.parametrize("routing", ["ecmp", "valiant", "ugal"])
    def test_batched_matches_reference(self, routing):
        topology = TOPOLOGIES["dragonfly"]()
        rng = np.random.default_rng(0)
        pairs = []
        for src in range(topology.num_nodes):
            for dst in rng.choice(topology.num_nodes, size=3, replace=False):
                if int(dst) != src:
                    pairs.append((src, int(dst), 8192))
        matrix = make_matrix(topology.num_nodes, pairs)
        setup = prepare_simulation(
            matrix,
            topology,
            execution_time=5e-4,
            routing=routing,
            routing_seed=2,
        )
        assert setup is not None
        a, b = run_batched(setup), run_reference(setup)
        for f in dataclasses.fields(a):
            va, vb = getattr(a, f.name), getattr(b, f.name)
            if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
                assert np.array_equal(va, vb), f.name
            else:
                assert va == vb, f.name

    def test_policy_changes_simulated_congestion(self):
        """Valiant's detours really reach the simulator's route tables."""
        topology = TOPOLOGIES["dragonfly"]()
        src, dst = random_pairs(topology, n=64, seed=1)
        keep = src != dst
        pairs = [
            (int(s), int(d), 4096) for s, d in zip(src[keep], dst[keep])
        ]
        matrix = make_matrix(topology.num_nodes, pairs)
        minimal = prepare_simulation(matrix, topology, routing="minimal")
        valiant = prepare_simulation(matrix, topology, routing="valiant")
        assert valiant.total_hops > minimal.total_hops
