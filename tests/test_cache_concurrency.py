"""Concurrent-writer hammer for the disk cache tier.

Eight forked processes share one disk cache directory and compute the
*same* content keys cold at the same moment (a barrier releases them
together).  With ``_atomic_write``'s temp-file + fsync + ``os.replace``
discipline, every racer either disk-hits a complete entry or writes its
own complete entry — readers can never observe a torn file, and losers
of the rename race leave no ``*.tmp`` litter behind.

Regression for the pre-atomic scheme where two writers shared the final
path and a reader could unpickle a half-written entry.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import pickle
from pathlib import Path

import pytest

from repro import cache

HAMMER_PROCS = 8


def _hammer_worker(disk_dir: str, out_dir: str, idx: int, barrier) -> None:
    """Compute trace -> matrix -> mapping cold against the shared disk tier."""
    from repro import cache
    from repro.validation.suite import build_topology

    cache.configure(disk_dir=disk_dir)
    cache.clear(memory=True)
    barrier.wait()

    trace = cache.cached_trace("LULESH", 64)
    matrix = cache.cached_matrix(trace, payload=4096)
    topology = build_topology("torus3d", 64)
    mapping = cache.cached_mapping(matrix, topology, method="bisection")

    digest = cache.array_digest(
        matrix.src, matrix.dst, matrix.nbytes, matrix.messages, matrix.packets
    )
    result = {
        "idx": idx,
        "matrix_digest": digest,
        "mapping_digest": cache.array_digest(mapping.nodes),
        "events": len(trace),
    }
    out = Path(out_dir) / f"worker-{idx}.json"
    out.write_text(json.dumps(result))


@pytest.fixture
def shared_disk(tmp_path):
    """Point this process at a fresh disk dir; restore isolation afterwards."""
    disk = tmp_path / "cache"
    yield disk
    cache.configure(disable_disk=True)
    cache.clear(memory=True)


class TestConcurrentWriters:
    def test_eight_processes_hammer_one_key(self, shared_disk, tmp_path):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(HAMMER_PROCS)
        procs = [
            ctx.Process(
                target=_hammer_worker,
                args=(str(shared_disk), str(out_dir), idx, barrier),
            )
            for idx in range(HAMMER_PROCS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
        assert all(proc.exitcode == 0 for proc in procs), [
            proc.exitcode for proc in procs
        ]

        results = [
            json.loads(path.read_text())
            for path in sorted(out_dir.glob("worker-*.json"))
        ]
        assert len(results) == HAMMER_PROCS

        # Every racer saw bit-identical artifacts, hit or miss.
        assert len({r["matrix_digest"] for r in results}) == 1
        assert len({r["mapping_digest"] for r in results}) == 1
        assert len({r["events"] for r in results}) == 1

        # Losers of the rename race must not leave temp litter behind.
        litter = [p for p in shared_disk.rglob("*.tmp") if p.is_file()]
        assert litter == []

        # Whatever won each rename is a complete, loadable entry.
        entries = sorted(shared_disk.glob(f"v{cache.CACHE_VERSION}-*"))
        assert entries, "hammer wrote nothing to the shared disk tier"
        for path in entries:
            if path.is_dir():  # chunked trace spill
                manifest = path / "manifest.json"
                assert manifest.is_file()
                json.loads(manifest.read_text())
            else:
                with path.open("rb") as fh:
                    pickle.load(fh)

        # And this (ninth) process warm-loads them from disk cleanly.
        cache.configure(disk_dir=shared_disk)
        cache.clear(memory=True)
        trace = cache.cached_trace("LULESH", 64)
        matrix = cache.cached_matrix(trace, payload=4096)
        digest = cache.array_digest(
            matrix.src, matrix.dst, matrix.nbytes, matrix.messages, matrix.packets
        )
        assert digest == results[0]["matrix_digest"]
        assert cache.stats()["trace"]["disk_hits"] >= 1
        assert cache.stats()["matrix"]["disk_hits"] >= 1
