"""Unit and property tests for packetization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.packets import (
    MAX_PAYLOAD_BYTES,
    packets_for_bytes,
    packets_for_bytes_array,
)


class TestScalar:
    def test_exact_multiples(self):
        assert packets_for_bytes(4096) == 1
        assert packets_for_bytes(8192) == 2

    def test_partial_packet_rounds_up(self):
        assert packets_for_bytes(1) == 1
        assert packets_for_bytes(4097) == 2

    def test_zero_bytes_is_one_packet(self):
        assert packets_for_bytes(0) == 1

    def test_custom_payload(self):
        assert packets_for_bytes(10, payload=4) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            packets_for_bytes(-1)
        with pytest.raises(ValueError):
            packets_for_bytes(10, payload=0)

    def test_default_payload_is_paper_value(self):
        assert MAX_PAYLOAD_BYTES == 4096


class TestVectorized:
    def test_matches_scalar(self):
        sizes = np.array([0, 1, 4095, 4096, 4097, 100000])
        expected = [packets_for_bytes(int(s)) for s in sizes]
        assert packets_for_bytes_array(sizes).tolist() == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            packets_for_bytes_array(np.array([1, -2]))

    def test_rejects_bad_payload(self):
        with pytest.raises(ValueError):
            packets_for_bytes_array(np.array([1]), payload=-1)


@given(st.integers(min_value=0, max_value=10**12))
def test_packet_count_covers_bytes(nbytes):
    pkts = packets_for_bytes(nbytes)
    assert pkts * MAX_PAYLOAD_BYTES >= nbytes
    assert (pkts - 1) * MAX_PAYLOAD_BYTES < max(nbytes, 1)


@given(
    st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=10**6),
)
def test_vectorized_agrees_with_scalar(sizes, payload):
    arr = np.array(sizes, dtype=np.int64)
    vec = packets_for_bytes_array(arr, payload)
    for s, p in zip(sizes, vec):
        assert p == packets_for_bytes(s, payload)
