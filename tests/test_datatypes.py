"""Unit tests for the MPI datatype model."""

import pytest

from repro.core.datatypes import (
    DERIVED_SIZE_CONVENTION,
    DatatypeRegistry,
    DerivedDatatype,
    DerivedKind,
    MPIDatatype,
    PREDEFINED_SIZES,
)


class TestMPIDatatype:
    def test_volume_scales_with_count(self):
        double = MPIDatatype("MPI_DOUBLE", 8)
        assert double.volume(0) == 0
        assert double.volume(7) == 56

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MPIDatatype("MPI_INT", 4).volume(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MPIDatatype("BAD", -3)


class TestDerivedConstructors:
    def test_contiguous(self):
        base = MPIDatatype("MPI_DOUBLE", 8)
        d = DerivedDatatype.contiguous("VEC", 10, base)
        assert d.size == 80
        assert d.kind is DerivedKind.CONTIGUOUS

    def test_vector(self):
        base = MPIDatatype("MPI_INT", 4)
        d = DerivedDatatype.vector("V", count=3, blocklength=5, base=base)
        assert d.size == 60

    def test_indexed(self):
        base = MPIDatatype("MPI_CHAR", 1)
        d = DerivedDatatype.indexed("I", [1, 2, 3], base)
        assert d.size == 6

    def test_struct(self):
        d = DerivedDatatype.struct(
            "S",
            [2, 1],
            [MPIDatatype("MPI_INT", 4), MPIDatatype("MPI_DOUBLE", 8)],
        )
        assert d.size == 16

    def test_struct_arity_mismatch(self):
        with pytest.raises(ValueError):
            DerivedDatatype.struct("S", [1, 2], [MPIDatatype("MPI_INT", 4)])

    def test_as_datatype_marks_derived(self):
        base = MPIDatatype("MPI_INT", 4)
        dt = DerivedDatatype.contiguous("C", 2, base).as_datatype()
        assert dt.derived and dt.size == 8


class TestRegistry:
    def test_predefined_types_present(self):
        reg = DatatypeRegistry()
        for name, size in PREDEFINED_SIZES.items():
            assert reg.size_of(name) == size
        assert reg.size_of("MPI_DOUBLE") == 8

    def test_unknown_resolves_to_one_byte(self):
        reg = DatatypeRegistry()
        dt = reg.resolve("SOME_APP_TYPE")
        assert dt.size == DERIVED_SIZE_CONVENTION
        assert dt.derived
        assert "SOME_APP_TYPE" in reg.opaque_names

    def test_opaque_resolution_is_stable(self):
        reg = DatatypeRegistry()
        assert reg.resolve("X") is reg.resolve("X")

    def test_commit_and_lookup(self):
        reg = DatatypeRegistry()
        reg.commit(MPIDatatype("BIG", 4096, derived=True))
        assert reg.size_of("BIG") == 4096
        assert "BIG" not in reg.opaque_names

    def test_commit_conflict_rejected(self):
        reg = DatatypeRegistry()
        reg.commit(MPIDatatype("T", 8, derived=True))
        with pytest.raises(ValueError, match="already committed"):
            reg.commit(MPIDatatype("T", 16, derived=True))

    def test_commit_idempotent(self):
        reg = DatatypeRegistry()
        dt = MPIDatatype("T", 8, derived=True)
        assert reg.commit(dt) == reg.commit(dt)

    def test_commit_derived_construction(self):
        reg = DatatypeRegistry()
        d = DerivedDatatype.contiguous("ROW", 100, reg.resolve("MPI_DOUBLE"))
        reg.commit(d)
        assert reg.size_of("ROW") == 800

    def test_contains_and_known_names(self):
        reg = DatatypeRegistry()
        assert "MPI_INT" in reg
        assert "NOPE" not in reg
        assert "MPI_INT" in reg.known_names()
