"""Tests for the report generator and the extended CLI commands."""

import pytest

from repro.analysis.report import build_report, render_report
from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestReport:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_report(max_ranks=70)

    def test_one_row_per_base_configuration(self, rows):
        labels = [r.label for r in rows]
        assert "LULESH@64" in labels
        assert "LULESH@64/b" not in labels  # variants folded
        assert len(labels) == len(set(labels))

    def test_fields_sane(self, rows):
        for r in rows:
            assert r.total_mb > 0
            assert 0.0 <= r.p2p_share <= 1.0
            assert r.best_topology in ("torus3d", "fattree", "dragonfly")
            assert r.best_hops > 0
            assert 0.0 <= r.useful_energy_fraction <= 1.0

    def test_render_markdown(self, rows):
        text = render_report(rows)
        assert text.startswith("# Network-locality characterization report")
        assert "| LULESH@64 |" in text
        assert "N/A" in text  # the all-collective apps


class TestCLIExtensions:
    def test_report_stdout(self, capsys):
        out = run(capsys, "report", "--max-ranks", "30")
        assert "characterization report" in out

    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        out = run(capsys, "report", "--max-ranks", "30", "--out", str(path))
        assert path.exists()
        assert "wrote report" in out

    def test_heatmap(self, capsys):
        out = run(capsys, "heatmap", "--app", "LULESH", "--ranks", "64", "--bins", "8")
        assert "fill" in out and "gini" in out

    def test_slack(self, capsys):
        out = run(capsys, "slack", "--app", "MiniFE", "--ranks", "18")
        assert "min slack" in out
        assert "per-link provisioning" in out

    def test_slack_dragonfly_breakdown(self, capsys):
        out = run(
            capsys, "slack", "--app", "AMG", "--ranks", "27",
            "--topology", "dragonfly",
        )
        assert "global/local" in out

    def test_convert_roundtrip(self, capsys, tmp_path):
        import textwrap

        body = textwrap.dedent(
            """\
            MPI_Send entering at walltime 10.0, cputime 0.0 seconds in thread 0.
            int count=100
            MPI_Datatype datatype=2 (MPI_CHAR)
            int dest=1
            int tag=0
            MPI_Comm comm=2 (MPI_COMM_WORLD)
            MPI_Send returning at walltime 10.1, cputime 0.1 seconds in thread 0.
            """
        )
        (tmp_path / "run-0000.txt").write_text(body)
        (tmp_path / "run-0001.txt").write_text("")
        out_file = tmp_path / "converted.dumpi.txt"
        out = run(
            capsys, "convert", "--dir", str(tmp_path), "--app", "realapp",
            "--out", str(out_file),
        )
        assert "converted realapp@2" in out
        from repro.dumpi.parser import load_trace

        trace = load_trace(out_file)
        assert trace.meta.app == "realapp"
        assert trace.p2p_bytes() == 100
