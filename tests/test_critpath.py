"""Critical-path engine: matching, DAG structure, costs, sensitivity."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.core.events import CollectiveEvent, CollectiveOp, Direction, P2PEvent
from repro.critpath import (
    DEFAULT_PARAMS,
    CycleError,
    EDGE_COLLECTIVE,
    EDGE_P2P,
    EDGE_PROGRAM,
    HappensBeforeDag,
    LogGPParams,
    MatchError,
    analyze_trace,
    build_dag,
    channel_audit,
    critical_path,
    edge_costs,
    ensure_receives,
    expand_events,
    latency_sensitivity,
    match_events,
    match_events_oracle,
)
from repro.analysis.tables import build_latency_rows, render_latency_table

from helpers import make_trace


def _recv(caller, peer, count, **kw):
    return P2PEvent(
        caller=caller, peer=peer, count=count, dtype="MPI_BYTE",
        direction=Direction.RECV, func="MPI_Irecv", **kw,
    )


def _send(caller, peer, count, **kw):
    return P2PEvent(caller=caller, peer=peer, count=count, dtype="MPI_BYTE", **kw)


def _pairs(result):
    return set(
        zip(
            result.send_event.tolist(),
            result.recv_event.tolist(),
            result.nbytes.tolist(),
        )
    )


# ------------------------------------------------------------------ matching


class TestMatching:
    def test_fifo_order_within_channel(self):
        """k-th send on a channel pairs with the k-th receive."""
        trace = make_trace(2)
        for count in (10, 20, 30):
            trace.add(_send(0, 1, count))
        for count in (10, 20, 30):
            trace.add(_recv(1, 0, count))
        table = expand_events(trace)
        result = match_events(table)
        assert len(result) == 3
        # Sends are events 0..2, receives 3..5, paired in order.
        assert result.send_event.tolist() == [0, 1, 2]
        assert result.recv_event.tolist() == [3, 4, 5]
        assert result.nbytes.tolist() == [10, 20, 30]

    def test_channels_are_tag_disjoint(self):
        """Same (src, dst) but different tags match independently."""
        trace = make_trace(2)
        trace.add(_send(0, 1, 1, tag=7))
        trace.add(_send(0, 1, 2, tag=9))
        trace.add(_recv(1, 0, 2, tag=9))
        trace.add(_recv(1, 0, 1, tag=7))
        result = match_events(expand_events(trace))
        assert _pairs(result) == {(0, 3, 1), (1, 2, 2)}

    def test_misaligned_repeats_match(self):
        """Repeat compression 6 vs 2+4 expands to the same FIFO stream."""
        trace = make_trace(2)
        trace.add(_send(0, 1, 5, repeat=6))
        trace.add(_recv(1, 0, 5, repeat=2))
        trace.add(_recv(1, 0, 5, repeat=4))
        result = match_events(expand_events(trace))
        assert len(result) == 6
        assert result.nbytes.tolist() == [5] * 6

    def test_unmatched_truncation_diagnostic(self):
        """A lost receive names the channel and both counts."""
        trace = make_trace(2)
        trace.add(_send(0, 1, 8, repeat=3))
        trace.add(_recv(1, 0, 8, repeat=2))
        with pytest.raises(MatchError) as err:
            match_events(expand_events(trace))
        message = str(err.value)
        assert "src=0" in message and "dst=1" in message
        assert "3 send(s)" in message and "2 recv(s)" in message

    def test_payload_mismatch_diagnostic(self):
        trace = make_trace(2)
        trace.add(_send(0, 1, 100))
        trace.add(_recv(1, 0, 99))
        with pytest.raises(MatchError, match="payload mismatch"):
            match_events(expand_events(trace))

    def test_oracle_raises_on_truncation_too(self):
        trace = make_trace(2)
        trace.add(_send(0, 1, 8))
        with pytest.raises(MatchError):
            match_events_oracle(expand_events(trace))

    @pytest.mark.parametrize(
        "app,ranks", [("AMG", 8), ("LULESH", 64), ("BigFFT", 9)]
    )
    def test_vectorized_matches_oracle_bit_identically(self, app, ranks):
        trace = ensure_receives(generate_trace(app, ranks))
        table = expand_events(trace, 8)
        vec = match_events(table)
        orc = match_events_oracle(table)
        assert np.array_equal(vec.send_event, orc.send_event)
        assert np.array_equal(vec.recv_event, orc.recv_event)
        assert np.array_equal(vec.nbytes, orc.nbytes)

    def test_max_repeat_clamps_expansion(self):
        trace = make_trace(2)
        trace.add(_send(0, 1, 5, repeat=100))
        trace.add(_recv(1, 0, 5, repeat=100))
        assert len(expand_events(trace, 4)) == 8
        assert len(expand_events(trace)) == 200


class TestEnsureReceives:
    def test_synthesizes_receives_for_send_only_trace(self):
        trace = make_trace(4)
        trace.add(_send(0, 1, 100, repeat=2))
        trace.add(_send(2, 3, 50))
        out = ensure_receives(trace)
        audit = channel_audit(out)
        assert audit.balanced
        assert int(audit.send_calls.sum()) == 3

    def test_idempotent_on_traces_with_receives(self):
        trace = generate_trace("AMG", 8, emit_receives=True)
        assert ensure_receives(trace) is trace

    def test_generated_equals_emitted(self):
        """Synthesized receives match the generator's own receive rows."""
        synth = ensure_receives(generate_trace("LULESH", 64))
        emitted = generate_trace("LULESH", 64, emit_receives=True)
        a, b = channel_audit(synth), channel_audit(emitted)
        assert np.array_equal(a.recv_calls, b.recv_calls)
        assert np.array_equal(a.recv_bytes, b.recv_bytes)


# ----------------------------------------------------------------- DAG


class TestDag:
    def test_ping_pong_critical_path_by_hand(self):
        """0 sends to 1, 1 sends back: T = g + 2*(2o + L) for 1-byte pings.

        Each rank has 2 events (its send and its recv); program-order
        edges cost g, each message edge 2o + L + (k-1)G with k=1.
        """
        trace = make_trace(2)
        trace.add(_send(0, 1, 1))
        trace.add(_recv(0, 1, 1))
        trace.add(_recv(1, 0, 1))
        trace.add(_send(1, 0, 1))
        dag = build_dag(trace)
        assert dag.num_nodes == 4
        p = DEFAULT_PARAMS
        cost, lterm = edge_costs(dag, p)
        cp = critical_path(dag, cost, lterm)
        msg = 2 * p.overhead_s + p.latency_s
        assert cp.makespan_s == pytest.approx(p.gap_s + 2 * msg)
        assert cp.l_terms == 2

    def test_program_order_edge_count(self):
        trace = ensure_receives(generate_trace("LULESH", 64))
        dag = build_dag(trace, 4)
        prog = int((dag.edge_kind == EDGE_PROGRAM).sum())
        # One chain edge per consecutive event pair per rank; no
        # collectives in LULESH, so no internal completion edges.
        assert prog == dag.num_events - dag.num_ranks
        assert not (dag.edge_kind == EDGE_COLLECTIVE).any()

    def test_acyclic_on_registry_apps(self):
        for app, ranks in (("AMG", 8), ("CMC_2D", 64), ("MiniFE", 18)):
            dag = build_dag(generate_trace(app, ranks), 4)
            dag.assert_acyclic()  # does not raise

    def test_hand_built_cycle_detected(self):
        dag = HappensBeforeDag(
            num_nodes=2,
            num_events=2,
            num_ranks=2,
            node_rank=np.array([0, 1]),
            completion_of=np.array([-1, -1]),
            edge_src=np.array([0, 1]),
            edge_dst=np.array([1, 0]),
            edge_bytes=np.array([0, 0]),
            edge_kind=np.array([1, 1], dtype=np.uint8),
        )
        with pytest.raises(CycleError, match="cycle"):
            dag.assert_acyclic()

    def test_bcast_fans_out_from_root(self):
        trace = make_trace(4)
        for r in range(4):
            trace.add(
                CollectiveEvent(
                    caller=r, op=CollectiveOp.BCAST, count=16, root=0
                )
            )
        dag = build_dag(trace)
        coll = dag.edge_kind == EDGE_COLLECTIVE
        assert int(coll.sum()) == 3  # root to each non-root member
        # Every fan-out edge departs the root's event node (not its
        # completion node) and arrives at a completion node.
        src_ranks = dag.node_rank[dag.edge_src[coll]]
        assert (src_ranks == 0).all()
        assert (dag.edge_dst[coll] >= dag.num_events).all()

    def test_allreduce_two_phase_sequencing(self):
        """Fan-in must complete before the fan-out departs (no 2-cycle)."""
        trace = make_trace(4)
        for r in range(4):
            trace.add(
                CollectiveEvent(caller=r, op=CollectiveOp.ALLREDUCE, count=8)
            )
        dag = build_dag(trace)
        dag.assert_acyclic()
        coll = np.flatnonzero(dag.edge_kind == EDGE_COLLECTIVE)
        # 3 fan-in edges to rank 0 plus 3 fan-out edges back.
        assert len(coll) == 6
        fanout = coll[dag.edge_src[coll] >= dag.num_events]
        assert len(fanout) == 3  # depart from the root's completion node

    def test_collective_instance_misalignment_raises(self):
        trace = make_trace(2)
        trace.add(CollectiveEvent(caller=0, op=CollectiveOp.ALLREDUCE, count=8))
        with pytest.raises(MatchError, match="collective"):
            build_dag(trace)


# ----------------------------------------------------- cost and sensitivity


class TestSensitivity:
    def test_loggp_validation(self):
        with pytest.raises(ValueError):
            LogGPParams(latency_s=0.0)
        with pytest.raises(ValueError):
            LogGPParams(overhead_s=-1.0)

    def test_fd_equals_algebraic_exactly_with_dyadic_defaults(self):
        trace = generate_trace("CMC_2D", 64)
        dag = build_dag(trace, 8)
        sens = latency_sensitivity(dag)
        assert sens.finite_difference == sens.algebraic
        assert sens.rel_err == 0.0

    def test_hops_lengthen_the_critical_path(self):
        from repro.validation.suite import build_topology

        trace = generate_trace("LULESH", 64)
        topo = build_topology("torus3d", 64)
        flat = analyze_trace(trace, fd_check=False)
        routed = analyze_trace(trace, topology=topo, fd_check=False)
        assert routed.makespan_s > flat.makespan_s
        assert routed.topology != "none"

    def test_analyze_trace_reports_tolerance(self):
        trace = generate_trace("AMG", 8)
        result = analyze_trace(trace, fd_check=True)
        assert result.fd_rel_err == 0.0
        assert result.tolerance_s == pytest.approx(
            0.01 * result.makespan_s / result.l_terms
        )

    def test_latency_table_renders_with_na(self):
        rows = build_latency_rows(max_ranks=16, fd_check=False)
        assert rows
        text = render_latency_table(rows)
        assert "dT/dL" in text
        # fd_check=False leaves the FD column NaN, rendered as N/A.
        assert "N/A" in text


# ----------------------------------------------------------- integrations


class TestIntegration:
    def test_sweep_critpath_axis(self):
        from repro.analysis.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            apps=(("AMG", 8),), topologies=("torus3d",), critpath=True
        )
        records = run_sweep(spec)
        assert all("critical_path_s" in r for r in records)
        assert all(r["latency_sensitivity"] >= 0 for r in records)

    def test_cells_roundtrip_critpath_fields(self):
        from repro.analysis.sweep import SweepSpec
        from repro.service.cells import cell_key, spec_from_dict, spec_to_dict

        spec = SweepSpec(critpath=True, critpath_max_repeat=8)
        clone = spec_from_dict(spec_to_dict(spec))
        assert clone == spec
        point = spec.points()[0]
        assert cell_key(spec, point) != cell_key(
            SweepSpec(critpath=False), point
        )

    def test_invariants_registered(self):
        from repro.validation.base import REGISTRY

        assert "critpath-matching" in REGISTRY
        assert "dag-acyclicity" in REGISTRY

    def test_matching_invariant_detects_truncation(self):
        from repro.comm.matrix import matrix_from_trace
        from repro.validation.base import CheckContext
        from repro.validation.invariants import check_critpath_matching

        trace = make_trace(2)
        trace.add(_send(0, 1, 8, repeat=3))
        trace.add(_recv(1, 0, 8, repeat=2))
        ctx = CheckContext(
            label="truncated",
            trace=trace,
            p2p_matrix=matrix_from_trace(trace, include_collectives=False),
        )
        violations = list(check_critpath_matching(ctx))
        assert violations and violations[0].severity == "error"
        assert "unbalanced" in violations[0].message

    def test_report_has_sensitivity_column(self):
        from repro.analysis.report import build_report, render_report

        rows = build_report(max_ranks=10)
        assert rows
        assert all(
            not math.isnan(r.latency_sensitivity) for r in rows
        )
        assert "dT/dL" in render_report(rows)

    def test_cached_dag_is_memoized(self):
        from repro.cache import cached_critpath_dag, cached_trace

        trace = cached_trace("AMG", 8)
        first = cached_critpath_dag(trace, max_repeat=4)
        assert cached_critpath_dag(trace, max_repeat=4) is first
        assert cached_critpath_dag(trace, max_repeat=8) is not first

    def test_bench_unknown_target_lists_names(self, capsys):
        from repro.cli import main

        code = main(["bench", "nonsense"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        for name in ("critpath", "pipeline", "tenancy"):
            assert name in err

    def test_cli_critpath_single_app(self, capsys):
        from repro.cli import main

        assert main(["critpath", "--app", "AMG", "--ranks", "8"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "dT/dL" in out
        assert "rel err 0.00e+00" in out
