"""Tests for the static network analysis engine (Eqs. 3-5, §6 conventions)."""

import numpy as np
import pytest

from repro.comm.matrix import CommMatrixBuilder, matrix_from_trace
from repro.core.events import CollectiveEvent, CollectiveOp
from repro.mapping.base import Mapping
from repro.model.engine import BANDWIDTH_BYTES_PER_S, analyze_network
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D

from helpers import make_matrix, make_trace


class TestPacketHops:
    def test_single_message(self):
        m = make_matrix(8, [(0, 1, 4096)])  # 1 packet, 1 hop on the torus
        topo = Torus3D((2, 2, 2))
        r = analyze_network(m, topo)
        assert r.packet_hops == 1
        assert r.total_packets == 1
        assert r.avg_hops == 1.0

    def test_multi_packet_message(self):
        m = make_matrix(8, [(0, 7, 10000)])  # 3 packets, 3 hops each
        r = analyze_network(m, Torus3D((2, 2, 2)))
        assert r.packet_hops == 9
        assert r.avg_hops == 3.0

    def test_zero_hop_packets_count_in_average(self):
        """Paper convention: a collective's root self-message contributes
        packets (denominator) but no hops."""
        b = CommMatrixBuilder(8)
        b.add_message(0, 0, 4096)
        b.add_message(0, 1, 4096)
        m = b.finalize()
        r = analyze_network(m, Torus3D((2, 2, 2)))
        assert r.total_packets == 2
        assert r.packet_hops == 1
        assert r.avg_hops == 0.5

    def test_mapping_collapses_colocated_traffic(self):
        m = make_matrix(8, [(0, 1, 4096), (0, 4, 4096)])
        topo = Torus3D((2, 2, 2))
        mapping = Mapping.consecutive(8, 8, ranks_per_node=2)  # 0,1 share node 0
        r = analyze_network(m, topo, mapping=mapping)
        assert r.network_bytes == 4096  # only the 0->4 message crosses


class TestPaperExactAverages:
    def test_cmc_style_rooted_collectives_torus(self):
        """Allreduce rooted at rank 0 gives exactly the mean distance from
        node 0 — the paper's CMC rows read exactly 3.00 / 5.00 / 8.00."""
        for dims, expected in [((4, 4, 4), 3.0), ((8, 8, 4), 5.0), ((16, 8, 8), 8.0)]:
            n = dims[0] * dims[1] * dims[2]
            trace = make_trace(n)
            for r in range(n):
                trace.add(
                    CollectiveEvent(caller=r, op=CollectiveOp.ALLREDUCE, count=64)
                )
            matrix = matrix_from_trace(trace)
            result = analyze_network(matrix, Torus3D(dims))
            assert result.avg_hops == pytest.approx(expected, abs=1e-9)

    def test_alltoall_single_switch_fat_tree(self):
        """BigFFT@9 on (48,1): alltoall incl. self -> 2*(N-1)/N = 1.78."""
        n = 9
        trace = make_trace(n)
        for r in range(n):
            trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLTOALL, count=10))
        matrix = matrix_from_trace(trace)
        result = analyze_network(matrix, FatTree(48, 1))
        assert result.avg_hops == pytest.approx(2 * 8 / 9, abs=1e-9)

    def test_uniform_alltoall_full_torus(self):
        """Alltoall over every node of a (16,8,8) torus averages exactly 8."""
        n = 1024
        trace = make_trace(n)
        for r in range(n):
            trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLTOALL, count=1))
        matrix = matrix_from_trace(trace)
        result = analyze_network(matrix, Torus3D((16, 8, 8)))
        assert result.avg_hops == pytest.approx(8.0, abs=1e-9)


class TestUtilization:
    def test_formula(self):
        m = make_matrix(8, [(0, 1, 4096)])
        r = analyze_network(
            m, Torus3D((2, 2, 2)), execution_time=2.0, bandwidth=1000.0
        )
        # 4096 payload bytes over 1 used link for 2 s at 1 kB/s (Eq. 5)
        assert r.used_links == 1
        assert r.utilization == pytest.approx(4096 / (1000.0 * 2.0 * 1))

    def test_volume_modes(self):
        m = make_matrix(8, [(0, 1, 100)])
        padded = analyze_network(m, Torus3D((2, 2, 2)), volume_mode="padded")
        raw = analyze_network(m, Torus3D((2, 2, 2)), volume_mode="raw")
        default = analyze_network(m, Torus3D((2, 2, 2)))
        assert padded.wire_bytes == 4096
        assert raw.wire_bytes == 100
        assert default.wire_bytes == raw.wire_bytes  # raw is Eq. 5's default
        assert raw.utilization < padded.utilization

    def test_self_traffic_excluded_from_wire(self):
        b = CommMatrixBuilder(8)
        b.add_message(2, 2, 10_000)
        r = analyze_network(b.finalize(), Torus3D((2, 2, 2)))
        assert r.network_bytes == 0
        assert r.wire_bytes == 0
        assert r.used_links == 0
        assert r.utilization == 0.0

    def test_nominal_links_scaled_to_used_nodes(self):
        m = make_matrix(4, [(0, 1, 1)])
        r = analyze_network(m, Torus3D((4, 4, 4)))
        # default consecutive mapping uses 4 nodes (one per rank)
        assert r.nominal_links == pytest.approx(12.0)

    def test_default_bandwidth_is_paper_value(self):
        assert BANDWIDTH_BYTES_PER_S == 12e9

    def test_validation(self):
        m = make_matrix(4, [(0, 1, 1)])
        with pytest.raises(ValueError):
            analyze_network(m, Torus3D((2, 2, 2)), volume_mode="bogus")
        with pytest.raises(ValueError):
            analyze_network(m, Torus3D((2, 2, 2)), execution_time=0.0)
        with pytest.raises(ValueError):
            analyze_network(
                m, Torus3D((2, 2, 2)), mapping=Mapping.consecutive(4, 4)
            )  # 4-node mapping vs 8-node topology


class TestDragonflyGlobalShare:
    def test_intra_group_traffic_share_zero(self):
        df = Dragonfly(4, 2, 2)
        m = make_matrix(df.num_nodes, [(0, 1, 4096), (0, 7, 4096)])
        r = analyze_network(m, df)
        assert r.global_link_packet_share == 0.0

    def test_cross_group_traffic_share_one(self):
        df = Dragonfly(4, 2, 2)
        m = make_matrix(df.num_nodes, [(0, 8, 4096), (0, 70, 4096)])
        r = analyze_network(m, df)
        assert r.global_link_packet_share == 1.0

    def test_share_is_none_for_other_topologies(self):
        m = make_matrix(8, [(0, 1, 1)])
        assert analyze_network(m, Torus3D((2, 2, 2))).global_link_packet_share is None

    def test_uniform_traffic_mostly_global(self):
        """Paper: ~95% of dragonfly messages use a global link."""
        df = Dragonfly(4, 2, 2)
        n = df.num_nodes
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        b = CommMatrixBuilder(n)
        b.add_arrays(
            src.ravel(), dst.ravel(),
            np.full(n * n, 100), np.ones(n * n, dtype=np.int64),
            np.ones(n * n, dtype=np.int64),
        )
        r = analyze_network(b.finalize(), df)
        assert r.global_link_packet_share == pytest.approx(8 / 9, abs=0.01)
