"""Tests for rank-to-node mappings and the multi-core study."""

import numpy as np
import pytest

from repro.comm.matrix import matrix_from_trace
from repro.mapping.base import Mapping
from repro.mapping.multicore import inter_node_bytes, multicore_sweep

from helpers import make_matrix


class TestMapping:
    def test_consecutive_identity(self):
        m = Mapping.consecutive(8, 8)
        assert m.nodes.tolist() == list(range(8))
        assert m.num_used_nodes == 8
        assert m.max_ranks_per_node() == 1

    def test_consecutive_multicore(self):
        m = Mapping.consecutive(8, 4, ranks_per_node=2)
        assert m.nodes.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert m.ranks_on_node(1).tolist() == [2, 3]

    def test_consecutive_overflow_rejected(self):
        with pytest.raises(ValueError):
            Mapping.consecutive(10, 4, ranks_per_node=2)

    def test_from_permutation(self):
        # permutation[i] = rank placed at slot i
        m = Mapping.from_permutation(np.array([2, 0, 1]), 3)
        assert m.nodes.tolist() == [1, 2, 0]

    def test_from_permutation_with_cores(self):
        m = Mapping.from_permutation(np.array([3, 1, 0, 2]), 2, ranks_per_node=2)
        assert m.nodes[3] == 0 and m.nodes[1] == 0
        assert m.nodes[0] == 1 and m.nodes[2] == 1

    def test_permutation_must_be_bijection(self):
        with pytest.raises(ValueError):
            Mapping.from_permutation(np.array([0, 0, 1]), 3)

    def test_random_is_deterministic_per_seed(self):
        a = Mapping.random(16, 16, seed=7)
        b = Mapping.random(16, 16, seed=7)
        c = Mapping.random(16, 16, seed=8)
        assert np.array_equal(a.nodes, b.nodes)
        assert not np.array_equal(a.nodes, c.nodes)

    def test_node_of_vectorized(self):
        m = Mapping.consecutive(6, 3, ranks_per_node=2)
        assert m.node_of(np.array([0, 3, 5])).tolist() == [0, 1, 2]

    def test_out_of_range_nodes_rejected(self):
        with pytest.raises(ValueError):
            Mapping(np.array([0, 5]), 3)


class TestInterNodeBytes:
    def test_all_local_when_one_node(self):
        m = make_matrix(4, [(0, 1, 100), (2, 3, 50)])
        mapping = Mapping(np.zeros(4, dtype=np.int64), 1)
        assert inter_node_bytes(m, mapping) == 0

    def test_all_remote_one_rank_per_node(self):
        m = make_matrix(4, [(0, 1, 100), (2, 3, 50)])
        mapping = Mapping.consecutive(4, 4)
        assert inter_node_bytes(m, mapping) == 150

    def test_pairing_matters(self):
        m = make_matrix(4, [(0, 1, 100), (2, 3, 50)])
        mapping = Mapping.consecutive(4, 2, ranks_per_node=2)  # (0,1) (2,3)
        assert inter_node_bytes(m, mapping) == 0

    def test_mapping_coverage_checked(self):
        m = make_matrix(4, [(0, 1, 1)])
        with pytest.raises(ValueError):
            inter_node_bytes(m, Mapping.consecutive(2, 2))


class TestMulticoreSweep:
    def test_baseline_is_one(self):
        m = make_matrix(8, [(r, (r + 1) % 8, 100) for r in range(8)])
        points = multicore_sweep(m, cores=(1, 2, 4, 8))
        assert points[0].relative_traffic == 1.0

    def test_monotone_nonincreasing_for_ring(self):
        # consecutive grouping of a ring strictly reduces crossing traffic
        m = make_matrix(64, [(r, (r + 1) % 64, 100) for r in range(64)])
        points = multicore_sweep(m, cores=(1, 2, 4, 8, 16))
        rel = [p.relative_traffic for p in points]
        assert all(b <= a for a, b in zip(rel, rel[1:]))
        # c cores keep (c-1)/c of ring links internal
        assert rel[1] == pytest.approx(0.5, abs=0.02)

    def test_sweep_must_start_at_one(self):
        m = make_matrix(4, [(0, 1, 1)])
        with pytest.raises(ValueError):
            multicore_sweep(m, cores=(2, 4))

    def test_reduction_on_real_trace(self, lulesh64_trace):
        matrix = matrix_from_trace(lulesh64_trace)
        points = multicore_sweep(matrix, cores=(1, 2, 4, 8, 16))
        rel = {p.cores_per_node: p.relative_traffic for p in points}
        assert rel[16] < rel[1]
        assert all(0.0 <= v <= 1.0 for v in rel.values())

    def test_saturation_needs_scale(self):
        """At >= 512 ranks (the paper's Figure-5 cut), gains level off by
        8-16 cores; at 64 ranks half the job fits a 32-core node, which is
        why the paper excludes small configurations."""
        from repro.apps.registry import generate_trace

        trace = generate_trace("LULESH", 512)
        matrix = matrix_from_trace(trace)
        points = multicore_sweep(matrix, cores=(1, 2, 4, 8, 16, 32, 48))
        rel = {p.cores_per_node: p.relative_traffic for p in points}
        assert rel[16] < rel[1]
        # saturation: the 16 -> 48 step changes much less than 1 -> 16
        drop_to_16 = rel[1] - rel[16]
        drop_after = rel[16] - rel[48]
        assert drop_after < drop_to_16
