"""Tests for the peers metric and the dimensionality (Table 4) analysis."""

import math

import numpy as np
import pytest

from repro.metrics.dimensionality import (
    chebyshev_distances,
    grid_distances,
    grid_shape,
    locality_by_dimension,
    manhattan_distances,
    rank_coordinates,
    rank_distance_nd,
    rank_locality_nd,
)
from repro.metrics.peers import peers, peers_per_rank

from helpers import make_matrix


class TestPeers:
    def test_peak_destination_count(self):
        m = make_matrix(5, [(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 0, 1)])
        assert peers(m) == 3

    def test_self_excluded(self):
        m = make_matrix(3, [(0, 0, 1), (0, 1, 1)])
        assert peers(m) == 1

    def test_no_traffic(self):
        assert peers(make_matrix(4, [])) == 0

    def test_per_rank(self):
        m = make_matrix(4, [(0, 1, 1), (0, 2, 1), (3, 0, 1)])
        assert peers_per_rank(m).tolist() == [2, 0, 0, 1]


class TestGridShape:
    def test_exact_cubes(self):
        assert grid_shape(64, 3) == (4, 4, 4)
        assert grid_shape(216, 3) == (6, 6, 6)
        assert grid_shape(1728, 3) == (12, 12, 12)

    def test_mixed_factors(self):
        assert grid_shape(18, 3) == (3, 3, 2)
        assert grid_shape(168, 2) == (14, 12)
        assert grid_shape(512, 3) == (8, 8, 8)

    def test_one_dimension_is_identity(self):
        assert grid_shape(17, 1) == (17,)

    def test_prime_count(self):
        assert grid_shape(13, 3) == (13, 1, 1)

    def test_product_invariant(self):
        for n in (6, 30, 100, 125, 1000, 1152):
            for d in (1, 2, 3, 4):
                assert math.prod(grid_shape(n, d)) == n

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_shape(0, 3)
        with pytest.raises(ValueError):
            grid_shape(8, 0)


class TestCoordinates:
    def test_row_major(self):
        coords = rank_coordinates(np.array([0, 5, 11]), (3, 4))
        assert coords.tolist() == [[0, 0], [1, 1], [2, 3]]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            rank_coordinates(np.array([12]), (3, 4))

    def test_roundtrip(self):
        shape = (3, 4, 5)
        ranks = np.arange(60)
        coords = rank_coordinates(ranks, shape)
        rebuilt = (coords[:, 0] * 4 + coords[:, 1]) * 5 + coords[:, 2]
        assert np.array_equal(rebuilt, ranks)


class TestGridDistances:
    def test_manhattan_vs_chebyshev(self):
        src = np.array([0])
        dst = np.array([5])  # (1,1) on a (4,4) grid
        assert manhattan_distances(src, dst, (4, 4))[0] == 2
        assert chebyshev_distances(src, dst, (4, 4))[0] == 1

    def test_1d_reduces_to_linear(self):
        src = np.array([2, 7])
        dst = np.array([5, 0])
        assert grid_distances(src, dst, (10,)).tolist() == [3, 7]

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            grid_distances(np.array([0]), np.array([1]), (4,), metric="euclid")


class TestRankDistanceND:
    def test_3d_faces_are_distance_one(self):
        # x-face neighbour on (4,4,4): linear offset 16, Manhattan 1
        m = make_matrix(64, [(0, 16, 100), (0, 1, 100), (0, 4, 100)])
        assert rank_distance_nd(m, (4, 4, 4)) <= 1.0
        assert rank_locality_nd(m, (4, 4, 4)) == 1.0

    def test_shape_must_match_ranks(self):
        m = make_matrix(8, [(0, 1, 1)])
        with pytest.raises(ValueError):
            rank_distance_nd(m, (3, 3))

    def test_no_traffic_nan(self):
        assert math.isnan(rank_distance_nd(make_matrix(8, []), (2, 2, 2)))

    def test_diagonal_under_both_metrics(self):
        # full 3D diagonal on (2,2,2): rank 0 -> 7
        m = make_matrix(8, [(0, 7, 100)])
        assert rank_distance_nd(m, (2, 2, 2), metric="manhattan") == 3.0
        assert rank_distance_nd(m, (2, 2, 2), metric="chebyshev") == 1.0


class TestLocalityByDimension:
    def test_lulesh_profile(self, lulesh64_p2p):
        loc = locality_by_dimension(lulesh64_p2p)
        # paper Table 4: 6% / 24% / 100%
        assert loc[1] < 0.15
        assert loc[1] < loc[2] < loc[3]
        assert loc[3] == 1.0

    def test_1d_neighbour_chain(self):
        m = make_matrix(12, [(r, r + 1, 100) for r in range(11)])
        loc = locality_by_dimension(m)
        assert loc[1] == 1.0  # already one-dimensional

    def test_returns_requested_dims(self):
        m = make_matrix(8, [(0, 1, 1)])
        assert set(locality_by_dimension(m, ndims=(1, 2))) == {1, 2}
