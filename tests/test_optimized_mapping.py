"""Tests for locality-aware mapping optimization (the paper's §7 suggestion)."""

import numpy as np
import pytest

from repro.comm.matrix import matrix_from_trace
from repro.mapping.base import Mapping
from repro.mapping.optimized import (
    greedy_ordering,
    optimize_mapping,
    refine_mapping,
    spectral_ordering,
    weighted_hop_cost,
)
from repro.topology.torus import Torus3D

from helpers import make_matrix


def scrambled_ring(n: int, seed: int = 3):
    """A ring whose rank numbering was shuffled: optimizable workload."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    pairs = [(int(perm[i]), int(perm[(i + 1) % n]), 1000) for i in range(n)]
    return make_matrix(n, pairs)


class TestOrderings:
    def test_greedy_is_permutation(self):
        m = scrambled_ring(27)
        order = greedy_ordering(m)
        assert sorted(order.tolist()) == list(range(27))

    def test_greedy_covers_isolated_ranks(self):
        m = make_matrix(6, [(0, 1, 100)])  # ranks 2..5 silent
        order = greedy_ordering(m)
        assert sorted(order.tolist()) == list(range(6))

    def test_greedy_places_heavy_pair_adjacent(self):
        m = make_matrix(6, [(0, 5, 10_000), (1, 2, 10)])
        order = greedy_ordering(m).tolist()
        assert abs(order.index(0) - order.index(5)) == 1

    def test_spectral_is_permutation(self):
        m = scrambled_ring(27)
        order = spectral_ordering(m)
        assert sorted(order.tolist()) == list(range(27))

    def test_spectral_recovers_ring_order(self):
        """On a shuffled ring the Fiedler ordering restores adjacency."""
        n = 32
        m = scrambled_ring(n)
        order = spectral_ordering(m).tolist()
        pos = {rank: i for i, rank in enumerate(order)}
        # measure adjacency of communicating pairs in the recovered order
        gaps = []
        for s, d in zip(m.src, m.dst):
            gaps.append(min(abs(pos[int(s)] - pos[int(d)]), n - abs(pos[int(s)] - pos[int(d)])))
        assert float(np.mean(gaps)) <= 2.0

    def test_spectral_trivial_cases(self):
        assert spectral_ordering(make_matrix(1, [])).tolist() == [0]
        assert spectral_ordering(make_matrix(4, [])).tolist() == [0, 1, 2, 3]


class TestCostAndOptimization:
    def test_weighted_hop_cost_zero_when_colocated(self):
        m = make_matrix(4, [(0, 1, 100)])
        topo = Torus3D((2, 2, 2))
        mapping = Mapping(np.zeros(4, dtype=np.int64), 8)
        assert weighted_hop_cost(m, topo, mapping) == 0.0

    def test_optimized_beats_consecutive_on_scrambled_ring(self):
        m = scrambled_ring(27)
        topo = Torus3D((3, 3, 3))
        base = weighted_hop_cost(m, topo, Mapping.consecutive(27, 27))
        for method in ("greedy", "spectral"):
            opt = optimize_mapping(m, topo, method=method)
            assert weighted_hop_cost(m, topo, opt) < base

    def test_consecutive_method_matches_baseline(self):
        m = scrambled_ring(8)
        topo = Torus3D((2, 2, 2))
        mapping = optimize_mapping(m, topo, method="consecutive")
        assert np.array_equal(mapping.nodes, Mapping.consecutive(8, 8).nodes)

    def test_unknown_method_rejected(self):
        m = scrambled_ring(8)
        with pytest.raises(ValueError):
            optimize_mapping(m, Torus3D((2, 2, 2)), method="magic")

    def test_refine_never_worsens(self):
        m = scrambled_ring(27)
        topo = Torus3D((3, 3, 3))
        start = Mapping.random(27, 27, seed=5)
        refined = refine_mapping(m, topo, start, max_passes=2, seed=0)
        assert weighted_hop_cost(m, topo, refined) <= weighted_hop_cost(
            m, topo, start
        )

    def test_optimized_beats_consecutive_on_real_trace(self, lulesh64_trace):
        """The paper's motivating claim: smart mapping reduces hop cost for
        workloads whose numbering does not match the topology — here we
        scramble LULESH first to emulate an unaligned assignment."""
        matrix = matrix_from_trace(lulesh64_trace, include_collectives=False)
        rng = np.random.default_rng(0)
        scrambled = matrix.remapped(rng.permutation(64))
        topo = Torus3D((4, 4, 4))
        base = weighted_hop_cost(scrambled, topo, Mapping.consecutive(64, 64))
        opt = optimize_mapping(scrambled, topo, method="greedy")
        assert weighted_hop_cost(scrambled, topo, opt) < 0.8 * base


class TestFallbackGuard:
    def test_aligned_workload_keeps_baseline(self, lulesh64_trace):
        matrix = matrix_from_trace(lulesh64_trace, include_collectives=False)
        topo = Torus3D((4, 4, 4))
        guarded = optimize_mapping(matrix, topo, method="bisection", fallback=True)
        base = Mapping.consecutive(64, topo.num_nodes)
        assert np.array_equal(guarded.nodes, base.nodes)

    def test_scrambled_workload_keeps_optimized(self):
        m = scrambled_ring(27)
        topo = Torus3D((3, 3, 3))
        guarded = optimize_mapping(m, topo, method="greedy", fallback=True)
        base = Mapping.consecutive(27, topo.num_nodes)
        assert weighted_hop_cost(m, topo, guarded) < weighted_hop_cost(
            m, topo, base
        )

    def test_guard_never_worse_than_baseline(self, lulesh64_trace):
        matrix = matrix_from_trace(lulesh64_trace, include_collectives=False)
        topo = Torus3D((4, 4, 4))
        base = weighted_hop_cost(
            matrix, topo, Mapping.consecutive(64, topo.num_nodes)
        )
        for method in ("greedy", "spectral", "bisection"):
            guarded = optimize_mapping(matrix, topo, method=method, fallback=True)
            assert weighted_hop_cost(matrix, topo, guarded) <= base
