"""Tests for the topology cost model, Valiant routing, and receive emission."""

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.dumpi.parser import loads_trace
from repro.dumpi.writer import dumps_trace
from repro.topology.cost import CostModel, TopologyCost, topology_cost
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.mesh import Mesh3D
from repro.topology.torus import Torus3D


class TestCostModel:
    def test_price_arithmetic(self):
        model = CostModel(switch_cost=2.0, electrical_link_cost=0.5, optical_link_cost=1.0)
        assert model.price(3, 4, 5) == pytest.approx(6 + 2 + 5)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(switch_cost=-1.0)

    def test_torus_all_electrical(self):
        cost = topology_cost(Torus3D((4, 4, 4)))
        assert cost.switches == 64
        assert cost.optical_links == 0
        assert cost.electrical_links == 3 * 64
        assert cost.optical_share == 0.0

    def test_mesh_counts(self):
        cost = topology_cost(Mesh3D((4, 4, 4)))
        assert cost.electrical_links == Mesh3D((4, 4, 4)).num_links
        assert cost.optical_links == 0

    def test_single_switch_fat_tree(self):
        cost = topology_cost(FatTree(48, 1))
        assert cost.switches == 1
        assert cost.electrical_links == 48
        assert cost.optical_links == 0

    def test_two_stage_fat_tree(self):
        cost = topology_cost(FatTree(48, 2))
        # 24 leaves + 12 top switches; 576 node cables + 576 uplinks
        assert cost.switches == 36
        assert cost.electrical_links == 576
        assert cost.optical_links == 576

    def test_three_stage_fat_tree(self):
        cost = topology_cost(FatTree(48, 3))
        assert cost.num_nodes == 13824
        assert cost.switches == 576 + 576 + 288
        assert cost.total_links == 13824 + 13824 + 13824

    def test_dragonfly_counts(self):
        df = Dragonfly(4, 2, 2)
        cost = topology_cost(df)
        assert cost.switches == 9 * 4
        assert cost.optical_links == 9 * 8 // 2
        assert cost.electrical_links == 72 + 9 * 6

    def test_unknown_topology(self):
        class Fake:
            pass

        with pytest.raises(TypeError):
            topology_cost(Fake())  # type: ignore[arg-type]

    def test_cost_per_node(self):
        cost = TopologyCost("x", 10, 1, 10, 0, 5.0)
        assert cost.cost_per_node == 0.5


class TestValiantRouting:
    @pytest.fixture(scope="class")
    def df(self):
        return Dragonfly(4, 2, 2)

    def test_intra_group_unchanged(self, df):
        src = np.array([0, 0, 3])
        dst = np.array([0, 7, 5])
        assert np.array_equal(
            df.valiant_hops(src, dst), df.hops_array(src, dst)
        )

    def test_cross_group_in_bounds(self, df):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 8, 300)  # group 0
        dst = rng.integers(8, df.num_nodes, 300)
        val = df.valiant_hops(src, dst, rng)
        assert val.min() >= 4  # node + 2 globals + node at minimum
        assert val.max() <= 7  # + up to 3 local detours

    def test_longer_on_average_than_minimal(self, df):
        rng = np.random.default_rng(1)
        src = rng.integers(0, df.num_nodes, 2000)
        dst = rng.integers(0, df.num_nodes, 2000)
        cross = df.crosses_groups(src, dst)
        minimal = df.hops_array(src, dst)[cross].mean()
        valiant = df.valiant_hops(src, dst, rng)[cross].mean()
        assert valiant > minimal + 0.5

    def test_deterministic_given_rng(self, df):
        src = np.array([0, 1, 2])
        dst = np.array([20, 30, 40])
        a = df.valiant_hops(src, dst, np.random.default_rng(7))
        b = df.valiant_hops(src, dst, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestReceiveEmission:
    def test_doubles_p2p_records(self):
        plain = generate_trace("CrystalRouter", 10)
        both = generate_trace("CrystalRouter", 10, emit_receives=True)
        assert len(both) == 2 * len(plain)

    def test_analyses_invariant(self):
        plain = generate_trace("LULESH", 64)
        both = generate_trace("LULESH", 64, emit_receives=True)
        mp = matrix_from_trace(plain)
        mb = matrix_from_trace(both)
        assert mp.total_bytes == mb.total_bytes
        assert mp.total_packets == mb.total_packets

    def test_receives_round_trip_through_dumpi(self):
        trace = generate_trace("MiniFE", 18, emit_receives=True)
        back = loads_trace(dumps_trace(trace))
        assert back.events == trace.events

    def test_receives_mirror_sends(self):
        trace = generate_trace("CrystalRouter", 10, emit_receives=True)
        sends = [(e.caller, e.peer, e.count) for e in trace.events if e.is_send]
        recvs = [(e.peer, e.caller, e.count) for e in trace.events if not e.is_send]
        assert sorted(sends) == sorted(recvs)
