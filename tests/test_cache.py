"""The content-keyed cache: memory tier, disk tier, keys, and invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache
from repro.cache import (
    array_digest,
    cached_matrix,
    cached_route_incidence,
    cached_trace,
    trace_content_key,
)
from repro.comm.matrix import matrix_from_trace
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D


def _corrupt_entries(root, junk: bytes) -> None:
    """Overwrite every disk entry with junk (spill dirs via their manifest)."""
    for f in root.iterdir():
        if f.is_dir():
            (f / "manifest.json").write_bytes(junk)
        else:
            f.write_bytes(junk)


@pytest.fixture(autouse=True)
def isolated_cache():
    """Every test starts with empty in-memory regions and no disk tier."""
    cache.configure(disable_disk=True)
    cache.clear(memory=True)
    yield
    cache.configure(disable_disk=True)
    cache.clear(memory=True)


class TestMemoryTier:
    def test_trace_hit_returns_same_object(self):
        a = cached_trace("LULESH", 64)
        b = cached_trace("LULESH", 64)
        assert a is b
        assert cache.stats()["trace"] == {"hits": 1, "misses": 1, "disk_hits": 0}

    def test_trace_key_includes_all_determinism_axes(self):
        base = cached_trace("LULESH", 64)
        assert cached_trace("LULESH", 64, seed=1) is not base
        assert cached_trace("LULESH", 512) is not base
        assert cached_trace("LULESH", 64, variant="b") is not base
        assert cached_trace("AMG", 27) is not base

    def test_matrix_hit_and_axis_separation(self):
        trace = cached_trace("LULESH", 64)
        full = cached_matrix(trace)
        assert cached_matrix(trace) is full
        p2p = cached_matrix(trace, include_collectives=False)
        assert p2p is not full
        small = cached_matrix(trace, payload=1024)
        assert small is not full
        assert small.total_packets > full.total_packets

    def test_cached_matrix_matches_direct_construction(self):
        trace = cached_trace("LULESH", 64)
        direct = matrix_from_trace(trace, include_collectives=False)
        via_cache = cached_matrix(trace, include_collectives=False)
        assert np.array_equal(direct.src, via_cache.src)
        assert np.array_equal(direct.nbytes, via_cache.nbytes)
        assert np.array_equal(direct.packets, via_cache.packets)

    def test_incidence_hit_per_topology_fingerprint(self):
        src = np.array([0, 1, 2], dtype=np.int64)
        dst = np.array([3, 4, 5], dtype=np.int64)
        a = cached_route_incidence(Torus3D((2, 2, 2)), src, dst)
        b = cached_route_incidence(Torus3D((2, 2, 2)), src, dst)  # new object, same shape
        assert b is a
        c = cached_route_incidence(Torus3D((2, 2, 4)), src, dst)
        assert c is not a

    def test_incidence_key_includes_pair_content(self):
        topo = FatTree(4, 2)
        a = cached_route_incidence(topo, np.array([0, 1]), np.array([2, 3]))
        b = cached_route_incidence(topo, np.array([0, 1]), np.array([3, 2]))
        assert b is not a

    def test_lru_eviction(self):
        cache.configure(memory_items={"trace": 1})
        cached_trace("LULESH", 64)
        cached_trace("AMG", 27)  # evicts LULESH
        cached_trace("LULESH", 64)
        s = cache.stats()["trace"]
        assert s["misses"] == 3 and s["hits"] == 0
        cache.configure(memory_items={"trace": 64})

    def test_clear_resets_entries_and_stats(self):
        cached_trace("LULESH", 64)
        cache.clear(memory=True)
        assert cache.stats()["trace"] == {"hits": 0, "misses": 0, "disk_hits": 0}
        cached_trace("LULESH", 64)
        assert cache.stats()["trace"]["misses"] == 1


class TestDiskTier:
    def test_trace_round_trip(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        cold = cached_trace("LULESH", 64)
        cache.clear(memory=True)
        warm = cached_trace("LULESH", 64)
        assert warm is not cold  # reloaded from disk, not memory
        assert len(warm.events) == len(cold.events)
        assert warm.meta.execution_time == cold.meta.execution_time
        assert cache.stats()["trace"]["disk_hits"] == 1

    def test_trace_persists_as_spill_directory(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        entries = list(tmp_path.iterdir())
        assert entries and all(e.name.endswith(".spill") for e in entries)
        assert all(e.is_dir() and (e / "manifest.json").is_file() for e in entries)

    def test_warm_trace_columns_are_memory_mapped(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        cache.clear(memory=True)
        warm = cached_trace("LULESH", 64)
        assert cache.stats()["trace"]["disk_hits"] == 1
        block = warm.blocks()[0]
        assert isinstance(block.caller.base, np.memmap)

    @pytest.mark.parametrize("app", ["LULESH", "Boxlib_CNS"])
    def test_trace_spill_round_trip_bit_identical(self, tmp_path, app):
        """Spill reload is exact — including derived-dtype apps whose block
        dtype names are absent from the (lazily populated) registry."""
        cache.configure(disk_dir=tmp_path)
        cold = cached_trace(app, 64)
        cache.clear(memory=True)
        warm = cached_trace(app, 64)
        assert cache.stats()["trace"]["disk_hits"] == 1
        assert warm.meta == cold.meta
        assert warm.datatypes == cold.datatypes
        assert warm.communicators == cold.communicators
        assert warm.events == cold.events

    def test_matrix_round_trip(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        trace = cached_trace("LULESH", 64)
        cold = cached_matrix(trace)
        cache.clear(memory=True)
        warm = cached_matrix(cached_trace("LULESH", 64))
        assert np.array_equal(warm.packets, cold.packets)
        assert cache.stats()["matrix"]["disk_hits"] == 1

    def test_incidence_round_trip_npz(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        topo = Dragonfly(4, 2, 2)
        src = np.arange(10, dtype=np.int64)
        dst = (src + 13) % topo.num_nodes
        cold = cached_route_incidence(topo, src, dst)
        cache.clear(memory=True)
        warm = cached_route_incidence(topo, src, dst)
        assert np.array_equal(warm.pair_index, cold.pair_index)
        assert np.array_equal(warm.link_id, cold.link_id)
        assert cache.stats()["incidence"]["disk_hits"] == 1

    def test_version_prefix_in_filenames(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        files = list(tmp_path.iterdir())
        assert files and all(
            f.name.startswith(f"v{cache.CACHE_VERSION}-") for f in files
        )

    def test_clear_disk_removes_entries(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        assert list(tmp_path.iterdir())
        cache.clear(memory=True, disk=True)
        assert not list(tmp_path.iterdir())
        cached_trace("LULESH", 64)
        assert cache.stats()["trace"]["disk_hits"] == 0

    # pickle.load surfaces different exception types depending on the bytes:
    # b"not a pickle" -> UnpicklingError, b"garbage\n" -> ValueError (the
    # 'g' opcode tries int("arbage")).  Both must read as a cache miss.
    @pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n", b""])
    def test_corrupt_disk_entry_recomputed(self, tmp_path, junk):
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        _corrupt_entries(tmp_path, junk)
        cache.clear(memory=True)
        trace = cached_trace("LULESH", 64)  # falls back to regeneration
        assert trace.meta.num_ranks == 64
        assert cache.stats()["trace"]["disk_hits"] == 0

    def test_corrupt_npz_entry_recomputed(self, tmp_path):
        cache.configure(disk_dir=tmp_path)
        topo = Torus3D((2, 2, 2))
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([5, 6], dtype=np.int64)
        cold = cached_route_incidence(topo, src, dst)
        for f in tmp_path.iterdir():
            f.write_bytes(b"garbage\n")
        cache.clear(memory=True)
        warm = cached_route_incidence(topo, src, dst)
        assert np.array_equal(warm.link_id, cold.link_id)
        assert cache.stats()["incidence"]["disk_hits"] == 0


class TestKeys:
    def test_array_digest_content_sensitivity(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a[::-1])
        assert array_digest(a) != array_digest(a.astype(np.int32))
        assert array_digest(a, a) != array_digest(a)

    def test_cached_trace_carries_provenance_key(self):
        trace = cached_trace("LULESH", 64)
        key = trace_content_key(trace)
        assert key == ("trace", "LULESH", 64, "", 0, False)

    def test_foreign_trace_content_key_is_stable(self, ring_trace):
        k1 = trace_content_key(ring_trace)
        k2 = trace_content_key(ring_trace)
        assert k1 == k2
        assert k1[0] == "trace-content"

    def test_unfingerprinted_topology_bypasses_cache(self):
        class Opaque(Torus3D):
            """A subclass without its own fingerprint is treated as opaque
            only if it overrides fingerprint to return None."""

            def fingerprint(self):
                return None

        src = np.array([0], dtype=np.int64)
        dst = np.array([5], dtype=np.int64)
        topo = Opaque((2, 2, 2))
        assert topo.fingerprint() is None
        a = cached_route_incidence(topo, src, dst)
        b = cached_route_incidence(topo, src, dst)
        assert a is not b  # recomputed, never cached
        assert cache.stats()["incidence"] == {
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
        }

    def test_cache_version_is_8(self):
        """v8 added the collective-algorithm engines (v7: critical-path
        engine) — matrices and happens-before DAGs key on the engine's
        ``cache_token()``, and a version bump cold-starts the disk tier
        so no v7 entry expanded under the implicit flat default can
        alias a tree-engine artifact."""
        assert cache.CACHE_VERSION == 8

    def test_policies_never_share_entries(self):
        """Different routing policies must never alias one cache entry —
        even on topologies where they happen to produce identical routes
        (ECMP == minimal on the dragonfly's unique shortest paths)."""
        topo = Dragonfly(4, 2, 2)
        src = np.arange(20, dtype=np.int64)
        dst = (src + 17) % topo.num_nodes
        minimal = cached_route_incidence(topo, src, dst, routing="minimal")
        ecmp = cached_route_incidence(topo, src, dst, routing="ecmp")
        assert ecmp is not minimal
        assert np.array_equal(ecmp.link_id, minimal.link_id)  # same content
        s = cache.stats()["incidence"]
        assert s["misses"] == 2 and s["hits"] == 0
        # and each policy hits its own entry on re-query
        assert cached_route_incidence(topo, src, dst, routing="ecmp") is ecmp
        assert cache.stats()["incidence"]["hits"] == 1

    def test_seed_keys_only_randomized_policies(self):
        topo = Torus3D((3, 3, 3))
        src = np.arange(10, dtype=np.int64)
        dst = (src + 7) % topo.num_nodes
        a = cached_route_incidence(topo, src, dst, routing="minimal", seed=0)
        b = cached_route_incidence(topo, src, dst, routing="minimal", seed=9)
        assert b is a  # minimal is seed-invariant: one entry
        c = cached_route_incidence(topo, src, dst, routing="ecmp", seed=0)
        d = cached_route_incidence(topo, src, dst, routing="ecmp", seed=9)
        assert d is not c

    def test_load_aware_weights_key_the_entry(self):
        topo = Dragonfly(4, 2, 2)
        src = np.arange(10, dtype=np.int64)
        dst = (src + 21) % topo.num_nodes
        w1 = np.ones(10)
        w2 = np.full(10, 2.0)
        a = cached_route_incidence(topo, src, dst, routing="ugal", pair_weights=w1)
        b = cached_route_incidence(topo, src, dst, routing="ugal", pair_weights=w2)
        assert b is not a
        assert (
            cached_route_incidence(topo, src, dst, routing="ugal", pair_weights=w1)
            is a
        )

    def test_weights_ignored_for_non_load_aware_policies(self):
        """ECMP routes don't depend on traffic, so weights must not fragment
        its cache entries."""
        topo = Torus3D((3, 3, 3))
        src = np.arange(10, dtype=np.int64)
        dst = (src + 5) % topo.num_nodes
        a = cached_route_incidence(topo, src, dst, routing="ecmp")
        b = cached_route_incidence(
            topo, src, dst, routing="ecmp", pair_weights=np.full(10, 3.0)
        )
        assert b is a

    def test_builtin_topology_fingerprints_distinct(self):
        prints = {
            Torus3D((3, 3, 3)).fingerprint(),
            Torus3D((3, 3, 4)).fingerprint(),
            FatTree(8, 3).fingerprint(),
            Dragonfly(4, 2, 2).fingerprint(),
        }
        assert len(prints) == 4
        assert None not in prints


class TestCorruptionEviction:
    """Corrupt disk entries are logged, deleted, and transparently rebuilt."""

    def test_corrupt_spill_logged_and_evicted(self, tmp_path, caplog):
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        trace_entry = next(iter(tmp_path.iterdir()))
        (trace_entry / "manifest.json").write_bytes(b"not a manifest")
        cache.clear(memory=True)
        with caplog.at_level("WARNING", logger="repro.cache"):
            trace = cached_trace("LULESH", 64)
        assert trace.meta.num_ranks == 64
        assert cache.stats()["trace"]["disk_hits"] == 0
        assert any(
            "evicting corrupt cache entry" in rec.message for rec in caplog.records
        )
        # the recompute rewrote a *good* entry over the evicted one
        assert (trace_entry / "manifest.json").read_bytes() != b"not a manifest"

    def test_corrupt_npz_logged_and_evicted(self, tmp_path, caplog):
        import numpy as np

        cache.configure(disk_dir=tmp_path)
        topo = Torus3D((2, 2, 2))
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([5, 6], dtype=np.int64)
        cached_route_incidence(topo, src, dst)
        bad = next(iter(tmp_path.iterdir()))
        bad.write_bytes(b"\x00\x01garbage")
        cache.clear(memory=True)
        with caplog.at_level("WARNING", logger="repro.cache"):
            cached_route_incidence(topo, src, dst)
        assert cache.stats()["incidence"]["disk_hits"] == 0
        assert any(
            "evicting corrupt cache entry" in rec.message for rec in caplog.records
        )
        assert bad.read_bytes() != b"\x00\x01garbage"

    def test_next_reload_hits_disk_again(self, tmp_path):
        """After eviction the recompute rewrites a good entry."""
        cache.configure(disk_dir=tmp_path)
        cached_trace("LULESH", 64)
        _corrupt_entries(tmp_path, b"junk")
        cache.clear(memory=True)
        cached_trace("LULESH", 64)  # evicts + recomputes + rewrites
        cache.clear(memory=True)
        cached_trace("LULESH", 64)
        assert cache.stats()["trace"]["disk_hits"] == 1
