"""Tests for trace statistics (Table 1) and the MPI-level summary rows."""

import math

import pytest

from repro.comm.matrix import matrix_from_trace
from repro.comm.stats import MB, TraceStats, trace_stats
from repro.core.events import CollectiveEvent, CollectiveOp, P2PEvent
from repro.metrics.summary import mpi_level_metrics

from helpers import make_trace


class TestTraceStats:
    def test_pure_p2p(self, ring_trace):
        stats = trace_stats(ring_trace)
        assert stats.p2p_bytes == 4000
        assert stats.collective_logical_bytes == 0
        assert stats.p2p_share == 1.0
        assert stats.collective_share == 0.0

    def test_logical_vs_wire_collective_volume(self):
        n = 8
        trace = make_trace(n)
        for r in range(n):
            trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLTOALL, count=10))
        stats = trace_stats(trace)
        # logical: every caller records count=10 -> 80 bytes
        assert stats.collective_logical_bytes == n * 10
        # wire: each caller fans out to all n members -> n*n*10
        assert stats.collective_wire_bytes == n * n * 10
        assert stats.wire_total_bytes > stats.total_bytes

    def test_shares_on_mixed_trace(self, mixed_trace):
        stats = trace_stats(mixed_trace)
        assert stats.p2p_share + stats.collective_share == pytest.approx(1.0)
        assert 0 < stats.p2p_share < 1

    def test_throughput(self):
        trace = make_trace(2, time_s=2.0)
        trace.add(P2PEvent(caller=0, peer=1, count=4 * MB, dtype="MPI_BYTE"))
        assert trace_stats(trace).throughput_mb_per_s == pytest.approx(2.0)

    def test_empty_trace(self):
        stats = trace_stats(make_trace(4))
        assert stats.total_bytes == 0
        assert stats.p2p_share == 0.0
        assert stats.throughput_mb_per_s == 0.0

    def test_label_and_format(self):
        stats = TraceStats("X", "b", 8, 1.0, 100, 50, 70)
        assert stats.label == "X@8/b"
        assert "X@8/b" in stats.format_row()

    def test_repeat_expansion_counts(self):
        trace = make_trace(2)
        trace.add(P2PEvent(caller=0, peer=1, count=10, dtype="MPI_BYTE", repeat=7))
        assert trace_stats(trace).p2p_bytes == 70


class TestMPILevelMetrics:
    def test_p2p_trace(self, ring_trace):
        m = mpi_level_metrics(ring_trace)
        assert m.has_p2p
        assert m.peers == 1
        assert m.rank_distance_90 <= 3.0
        assert m.selectivity_90 == 1.0

    def test_all_collective_trace_reports_na(self):
        trace = make_trace(4)
        for r in range(4):
            trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLREDUCE, count=8))
        m = mpi_level_metrics(trace)
        assert not m.has_p2p
        assert m.peers == 0
        assert math.isnan(m.rank_distance_90)
        assert math.isnan(m.selectivity_90)
        assert "N/A" in m.format_row()

    def test_reuses_prebuilt_matrix(self, mixed_trace):
        matrix = matrix_from_trace(mixed_trace, include_collectives=False)
        a = mpi_level_metrics(mixed_trace, matrix)
        b = mpi_level_metrics(mixed_trace)
        assert a == b

    def test_format_row_numeric(self, mixed_trace):
        row = mpi_level_metrics(mixed_trace).format_row()
        assert "test@4" in row
