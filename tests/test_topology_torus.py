"""Tests for the 3D torus model, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.torus import Torus3D


def torus_graph(dims):
    """Reference graph with the same wiring, for shortest-path checks."""
    g = nx.Graph()
    X, Y, Z = dims
    for x in range(X):
        for y in range(Y):
            for z in range(Z):
                n = (x * Y + y) * Z + z
                for dim, size in enumerate(dims):
                    coords = [x, y, z]
                    coords[dim] = (coords[dim] + 1) % size
                    m = (coords[0] * Y + coords[1]) * Z + coords[2]
                    if m != n:
                        g.add_edge(n, m)
    return g


class TestStructure:
    def test_node_count(self):
        assert Torus3D((4, 3, 2)).num_nodes == 24

    def test_diameter(self):
        assert Torus3D((4, 4, 4)).diameter == 6
        assert Torus3D((2, 2, 2)).diameter == 3
        assert Torus3D((5, 5, 5)).diameter == 6

    def test_link_count_three_per_node(self):
        t = Torus3D((4, 4, 4))
        assert t.num_links == 3 * 64
        assert t.nominal_links(64) == 192.0
        assert t.nominal_links(10) == 30.0

    def test_coordinates_roundtrip(self):
        t = Torus3D((3, 4, 5))
        nodes = np.arange(60)
        coords = t.coordinates(nodes)
        rebuilt = np.array([t.node_at(*c) for c in coords])
        assert np.array_equal(rebuilt, nodes)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Torus3D((0, 2, 2))
        with pytest.raises(ValueError):
            Torus3D((2, 2))  # type: ignore[arg-type]


class TestHops:
    def test_self_is_zero(self):
        t = Torus3D((4, 4, 4))
        assert t.hops(17, 17) == 0

    def test_neighbour_is_one(self):
        t = Torus3D((4, 4, 4))
        assert t.hops(0, 1) == 1  # +z
        assert t.hops(0, 4) == 1  # +y
        assert t.hops(0, 16) == 1  # +x

    def test_wraparound_shortens(self):
        t = Torus3D((4, 1, 1))
        assert t.hops(0, 3) == 1  # wrap, not 3 steps

    def test_symmetry(self):
        t = Torus3D((3, 4, 5))
        rng = np.random.default_rng(1)
        a = rng.integers(0, 60, 200)
        b = rng.integers(0, 60, 200)
        assert np.array_equal(t.hops_array(a, b), t.hops_array(b, a))

    def test_triangle_inequality(self):
        t = Torus3D((3, 3, 3))
        rng = np.random.default_rng(2)
        for _ in range(100):
            a, b, c = rng.integers(0, 27, 3)
            assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    @pytest.mark.parametrize("dims", [(2, 2, 2), (3, 2, 2), (4, 3, 2), (3, 3, 3)])
    def test_matches_networkx_shortest_paths(self, dims):
        t = Torus3D(dims)
        g = torus_graph(dims)
        n = t.num_nodes
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for src in range(n):
            dst = np.arange(n)
            hops = t.hops_array(np.full(n, src), dst)
            for d in range(n):
                expected = 0 if d == src else lengths[src][d]
                assert hops[d] == expected, (dims, src, d)

    def test_out_of_range_rejected(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(ValueError):
            t.hops(0, 8)


class TestRoutes:
    def test_route_length_equals_hops(self):
        t = Torus3D((4, 3, 3))
        rng = np.random.default_rng(3)
        src = rng.integers(0, 36, 300)
        dst = rng.integers(0, 36, 300)
        inc = t.route_incidence(src, dst)
        hops = t.hops_array(src, dst)
        counted = np.bincount(inc.pair_index, minlength=300)
        assert np.array_equal(counted, hops)

    def test_route_links_are_valid_ids(self):
        t = Torus3D((3, 3, 3))
        inc = t.route_incidence(np.array([0]), np.array([26]))
        assert all(0 <= lid < t.num_links for lid in inc.link_id)

    def test_route_walks_contiguous_links(self):
        """Consecutive route links share an endpoint (a real path)."""
        t = Torus3D((4, 4, 4))
        for src, dst in [(0, 63), (5, 58), (17, 44)]:
            links = t.route_links(src, dst)
            # decode endpoints
            def endpoints(lid):
                node, dim = divmod(lid, 3)
                x, y, z = t.coordinates(np.array([node]))[0]
                coords = [x, y, z]
                other = list(coords)
                other[dim] = (other[dim] + 1) % t.dims[dim]
                return {t.node_at(*coords), t.node_at(*other)}

            current = {src}
            for lid in links:
                ends = endpoints(lid)
                assert current & ends, "route link does not touch current node"
                current = ends - current or ends
            assert dst in current | {dst}

    def test_used_links_bounded_by_total(self):
        t = Torus3D((4, 4, 4))
        rng = np.random.default_rng(4)
        src = rng.integers(0, 64, 500)
        dst = rng.integers(0, 64, 500)
        inc = t.route_incidence(src, dst)
        assert len(inc.used_links()) <= t.num_links

    def test_uniform_traffic_uses_most_links(self):
        t = Torus3D((3, 3, 3))
        n = t.num_nodes
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        inc = t.route_incidence(src.ravel(), dst.ravel())
        # dimension-order routing over all pairs touches every link
        assert len(inc.used_links()) == t.num_links

    def test_empty_route_for_self(self):
        t = Torus3D((2, 2, 2))
        inc = t.route_incidence(np.array([3]), np.array([3]))
        assert inc.num_incidences == 0

    def test_link_loads_aggregation(self):
        t = Torus3D((2, 2, 2))
        src = np.array([0, 0])
        dst = np.array([1, 1])
        inc = t.route_incidence(src, dst)
        ids, loads = inc.link_loads(np.array([10.0, 5.0]))
        assert len(ids) == 1
        assert loads[0] == 15.0

    def test_describe_link(self):
        t = Torus3D((2, 2, 2))
        assert "torus link" in t.describe_link(0)


class TestUniformAverage:
    def test_average_hops_uniform_small(self):
        t = Torus3D((2, 2, 2))
        # distances from any node: three at 1, three at 2, one at 3
        assert t.average_hops_uniform() == pytest.approx(12 / 7)
