"""Unit tests for the trace container."""

import pytest

from repro.core.communicator import Communicator
from repro.core.events import CollectiveEvent, CollectiveOp, Direction, P2PEvent
from repro.core.trace import Trace, TraceMetadata

from helpers import make_trace


class TestTraceMetadata:
    def test_label(self):
        meta = TraceMetadata("LULESH", 64, 1.0)
        assert meta.label == "LULESH@64"
        meta_v = TraceMetadata("LULESH", 64, 1.0, variant="b")
        assert meta_v.label == "LULESH@64/b"

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceMetadata("X", 0, 1.0)
        with pytest.raises(ValueError):
            TraceMetadata("X", 4, 0.0)


class TestTrace:
    def test_add_and_iterate(self, ring_trace):
        assert len(ring_trace) == 4
        assert ring_trace.num_calls == 4
        assert len(list(ring_trace)) == 4

    def test_repeat_counts_in_num_calls(self):
        trace = make_trace(2)
        trace.add(P2PEvent(caller=0, peer=1, count=1, dtype="MPI_BYTE", repeat=10))
        assert trace.num_calls == 10

    def test_out_of_range_caller_rejected(self):
        trace = make_trace(2)
        with pytest.raises(ValueError, match="caller"):
            trace.add(P2PEvent(caller=2, peer=0, count=1, dtype="MPI_BYTE"))

    def test_out_of_range_peer_rejected(self):
        trace = make_trace(2)
        with pytest.raises(ValueError, match="peer"):
            trace.add(P2PEvent(caller=0, peer=5, count=1, dtype="MPI_BYTE"))

    def test_unknown_communicator_rejected(self):
        trace = make_trace(2)
        with pytest.raises(ValueError, match="communicator"):
            trace.add(
                P2PEvent(caller=0, peer=1, count=1, dtype="MPI_BYTE", comm="NOPE")
            )

    def test_iter_p2p_sends_skips_recvs_and_collectives(self):
        trace = make_trace(2)
        trace.add(P2PEvent(caller=0, peer=1, count=1, dtype="MPI_BYTE"))
        trace.add(
            P2PEvent(
                caller=1, peer=0, count=1, dtype="MPI_BYTE",
                direction=Direction.RECV, func="MPI_Recv",
            )
        )
        trace.add(CollectiveEvent(caller=0, op=CollectiveOp.BARRIER))
        assert len(list(trace.iter_p2p_sends())) == 1
        assert len(list(trace.iter_collectives())) == 1

    def test_p2p_bytes_uses_datatype_size(self):
        trace = make_trace(2)
        trace.add(P2PEvent(caller=0, peer=1, count=10, dtype="MPI_DOUBLE", repeat=2))
        assert trace.p2p_bytes() == 160

    def test_p2p_bytes_opaque_derived_convention(self):
        trace = make_trace(2)
        trace.add(P2PEvent(caller=0, peer=1, count=10, dtype="MYSTERY_T"))
        assert trace.p2p_bytes() == 10  # 1 byte per element

    def test_active_ranks(self, mixed_trace):
        assert mixed_trace.active_ranks() == {0, 1, 2, 3}

    def test_global_communicator_criterion(self):
        trace = make_trace(4)
        assert trace.uses_only_global_communicators
        assert trace.communicators is not None
        trace.communicators.add(Communicator("SUB", (1, 3)))
        assert not trace.uses_only_global_communicators

    def test_extend(self):
        trace = make_trace(3)
        trace.extend(
            P2PEvent(caller=r, peer=(r + 1) % 3, count=1, dtype="MPI_BYTE")
            for r in range(3)
        )
        assert len(trace) == 3
