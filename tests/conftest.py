"""Shared fixtures: small traces, matrices, and generated workloads."""

from __future__ import annotations

import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import CommMatrix, matrix_from_trace
from repro.core.communicator import Communicator
from repro.core.events import CollectiveEvent, CollectiveOp, P2PEvent
from repro.core.trace import Trace

from helpers import make_trace


@pytest.fixture
def world8() -> Communicator:
    return Communicator.world(8)


@pytest.fixture
def ring_trace() -> Trace:
    """4 ranks, each sending 1000 B to its right neighbour (wrapping)."""
    trace = make_trace(4)
    for r in range(4):
        trace.add(P2PEvent(caller=r, peer=(r + 1) % 4, count=1000, dtype="MPI_BYTE"))
    return trace


@pytest.fixture
def mixed_trace() -> Trace:
    """4 ranks with p2p traffic plus one allreduce."""
    trace = make_trace(4)
    trace.add(P2PEvent(caller=0, peer=1, count=5000, dtype="MPI_BYTE", repeat=3))
    trace.add(P2PEvent(caller=2, peer=3, count=100, dtype="MPI_INT"))
    for r in range(4):
        trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLREDUCE, count=64))
    return trace


@pytest.fixture(scope="session")
def lulesh64_trace() -> Trace:
    return generate_trace("LULESH", 64)


@pytest.fixture(scope="session")
def lulesh64_p2p(lulesh64_trace) -> CommMatrix:
    return matrix_from_trace(lulesh64_trace, include_collectives=False)
