"""Tests for the communication-pattern builders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.patterns import (
    background_channels,
    biased_scattered_channels,
    coarsened_halo_channels,
    fanout_channels,
    halo_channels,
    hypercube_channels,
    morton_permutation,
    permute_channels,
    ring_channels,
    scaled_channels,
    scattered_channels,
    strided_face_channels,
    sweep2d_channels,
)

RNG = np.random.default_rng


def partners_of(ch, rank):
    return set(ch.dst[ch.src == rank].tolist())


class TestHalo:
    def test_interior_rank_full_stencil(self):
        ch = halo_channels((4, 4, 4), 1.0, 1.0, 1.0)
        center = (1 * 4 + 1) * 4 + 1
        assert len(partners_of(ch, center)) == 26

    def test_faces_only(self):
        ch = halo_channels((4, 4, 4), 1.0)
        center = (1 * 4 + 1) * 4 + 1
        assert len(partners_of(ch, center)) == 6

    def test_corner_rank_open_boundary(self):
        ch = halo_channels((4, 4, 4), 1.0, 1.0, 1.0)
        assert len(partners_of(ch, 0)) == 7  # 3 faces + 3 edges + 1 corner

    def test_periodic_wraps(self):
        ch = halo_channels((4, 4, 4), 1.0, periodic=True)
        assert len(partners_of(ch, 0)) == 6

    def test_weight_classes(self):
        ch = halo_channels((3, 3, 3), face_weight=9.0, edge_weight=3.0, corner_weight=1.0)
        weights = set(np.unique(ch.weight).tolist())
        assert weights == {9.0, 3.0, 1.0}

    def test_keep_fraction_requires_rng(self):
        with pytest.raises(ValueError):
            halo_channels((3, 3, 3), 1.0, 1.0, 1.0, corner_keep=0.5)

    def test_keep_fraction_drops_some(self):
        full = halo_channels((4, 4, 4), 9.0, 3.0, 1.0)
        thinned = halo_channels(
            (4, 4, 4), 9.0, 3.0, 1.0, corner_keep=0.3, edge_keep=0.5, rng=RNG(0)
        )
        assert len(thinned) < len(full)
        # faces untouched; only edges/corners thinned
        assert (thinned.weight == 9.0).sum() == (full.weight == 9.0).sum()
        assert (thinned.weight == 3.0).sum() < (full.weight == 3.0).sum()

    def test_2d_halo(self):
        ch = halo_channels((3, 3), 1.0, 1.0)
        assert len(partners_of(ch, 4)) == 8  # center of 3x3


class TestStridedAndCoarsened:
    def test_strided_face_offsets(self):
        ch = strided_face_channels((8, 8, 8), stride=2, weight=1.0)
        center = (4 * 8 + 4) * 8 + 4
        expected = {
            (4 + 2) * 64 + 4 * 8 + 4, (4 - 2) * 64 + 4 * 8 + 4,
            4 * 64 + (4 + 2) * 8 + 4, 4 * 64 + (4 - 2) * 8 + 4,
            4 * 64 + 4 * 8 + 6, 4 * 64 + 4 * 8 + 2,
        }
        assert partners_of(ch, center) == expected

    def test_strided_axes_subset(self):
        ch = strided_face_channels((4, 4, 4), 2, 1.0, axes=(0,))
        assert partners_of(ch, 0) == {2 * 16}

    def test_strided_axis_validation(self):
        with pytest.raises(ValueError):
            strided_face_channels((4, 4), 2, 1.0, axes=(5,))
        with pytest.raises(ValueError):
            strided_face_channels((4, 4), 0, 1.0)

    def test_coarsened_only_active_ranks(self):
        ch = coarsened_halo_channels((4, 4, 4), 2, 1.0)
        srcs = set(ch.src.tolist())
        coords_ok = all(
            all(c % 2 == 0 for c in np.unravel_index(s, (4, 4, 4))) for s in srcs
        )
        assert coords_ok

    def test_coarsened_degenerate_is_empty(self):
        assert len(coarsened_halo_channels((2, 2, 2), 4, 1.0)) == 0


class TestSweepAndRing:
    def test_sweep2d_neighbours(self):
        ch = sweep2d_channels(12, shape=(4, 3))
        assert partners_of(ch, 0) == {1, 3}
        assert partners_of(ch, 4) == {1, 3, 5, 7}

    def test_ring(self):
        ch = ring_channels(5)
        assert partners_of(ch, 0) == {1}
        assert partners_of(ch, 2) == {1, 3}

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_channels(1)


class TestHypercube:
    def test_power_of_two_partners(self):
        ch = hypercube_channels(16)
        assert partners_of(ch, 0) == {1, 2, 4, 8}

    def test_non_power_of_two_skips_out_of_range(self):
        ch = hypercube_channels(10)
        # partners of rank 9: 9^1=8, 9^2=11 (skip), 9^4=13 (skip), 9^8=1
        assert partners_of(ch, 9) == {8, 1}

    def test_decay_weights(self):
        ch = hypercube_channels(8, dim_weight_decay=0.5)
        w0 = ch.weight[(ch.src == 0) & (ch.dst == 1)][0]
        w2 = ch.weight[(ch.src == 0) & (ch.dst == 4)][0]
        assert w2 == pytest.approx(w0 * 0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            hypercube_channels(1)


class TestScattered:
    def test_partner_count(self):
        ch = scattered_channels(32, 5, RNG(0))
        for r in range(32):
            assert len(partners_of(ch, r)) == 5

    def test_zipf_weights_decay(self):
        ch = scattered_channels(16, 4, RNG(0), weight_decay="zipf")
        w = ch.weight[ch.src == 0]
        assert w[0] > w[-1]

    def test_total_weight(self):
        ch = scattered_channels(16, 4, RNG(0), total_weight=5.0)
        assert ch.weight.sum() == pytest.approx(5.0)

    def test_biased_distance_profiles_order(self):
        n = 400
        dists = {}
        for profile in ("loguniform", "quadratic", "uniform"):
            ch = biased_scattered_channels(n, 6, RNG(1), distance=profile)
            dists[profile] = float(np.abs(ch.src - ch.dst).mean())
        assert dists["loguniform"] < dists["quadratic"] < dists["uniform"]

    def test_biased_partner_counts(self):
        ch = biased_scattered_channels(50, 5, RNG(2))
        counts = [len(partners_of(ch, r)) for r in range(50)]
        assert min(counts) >= 3  # rejection sampling may fall slightly short

    def test_validation(self):
        with pytest.raises(ValueError):
            scattered_channels(8, 0, RNG(0))
        with pytest.raises(ValueError):
            biased_scattered_channels(8, 2, RNG(0), distance="bogus")
        with pytest.raises(ValueError):
            biased_scattered_channels(8, 2, RNG(0), weight_decay="bogus")


class TestFanoutBackground:
    def test_fanout_hub_degree(self):
        ch = fanout_channels(20, num_hubs=2, total_weight=1.0)
        hubs = {r for r in range(20) if len(partners_of(ch, r)) == 19}
        assert len(hubs) == 2

    def test_everyone_reaches_hub(self):
        ch = fanout_channels(10, num_hubs=1, total_weight=1.0)
        hub = 0
        for r in range(1, 10):
            assert hub in partners_of(ch, r)

    def test_background_full_mesh(self):
        ch = background_channels(6, 1.0)
        assert len(ch) == 30
        assert ch.weight.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fanout_channels(4, num_hubs=0, total_weight=1.0)
        with pytest.raises(ValueError):
            background_channels(1, 1.0)


class TestMortonAndScaling:
    def test_morton_is_permutation(self):
        for shape in ((4, 4, 4), (5, 5, 5), (3, 2)):
            perm = morton_permutation(shape)
            assert sorted(perm.tolist()) == list(range(int(np.prod(shape))))

    def test_morton_preserves_some_locality(self):
        """Z-order keeps small blocks together: the first 8 cells of a
        (4,4,4) grid in Morton order form the 2x2x2 corner block."""
        perm = morton_permutation((4, 4, 4))
        corner_block = [(x * 4 + y) * 4 + z for x in (0, 1) for y in (0, 1) for z in (0, 1)]
        positions = sorted(perm[corner_block].tolist())
        assert positions == list(range(8))

    def test_permute_channels(self):
        ch = ring_channels(4)
        perm = np.array([3, 2, 1, 0])
        p = permute_channels(ch, perm)
        assert partners_of(p, 3) == {2}  # old rank 0 -> new rank 3

    def test_scaled_channels(self):
        ch = ring_channels(4)
        s = scaled_channels(ch, 0.25)
        assert s.weight.sum() == pytest.approx(0.25)

    def test_scaled_preserves_calls_factor(self):
        ch = ring_channels(4).with_calls_factor(0.1)
        s = scaled_channels(ch, 2.0)
        assert np.all(s.factors() == 0.1)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6))
def test_halo_channel_count_property(x, y, z):
    """Every directed face adjacency appears exactly once."""
    ch = halo_channels((x, y, z), 1.0)
    expected = 2 * ((x - 1) * y * z + x * (y - 1) * z + x * y * (z - 1))
    assert len(ch) == expected
