"""Tests for heat-map summaries and the Mesh3D ablation topology."""

import numpy as np
import pytest

from repro.comm.matrix import matrix_from_trace
from repro.metrics.heatmap import downsample, heatmap_summary, render_ascii
from repro.topology.mesh import Mesh3D
from repro.topology.torus import Torus3D

from helpers import make_matrix


class TestDownsample:
    def test_preserves_total_bytes(self):
        m = make_matrix(16, [(0, 1, 100), (15, 3, 50), (7, 8, 25)])
        grid = downsample(m, bins=4)
        assert grid.sum() == 175

    def test_bins_capped_at_ranks(self):
        m = make_matrix(3, [(0, 1, 10)])
        grid = downsample(m, bins=100)
        assert grid.shape == (3, 3)

    def test_blocks_aggregate(self):
        m = make_matrix(4, [(0, 2, 10), (1, 3, 20)])
        grid = downsample(m, bins=2)
        assert grid[0, 1] == 30  # both pairs land in block (0, 1)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            downsample(make_matrix(4, [(0, 1, 1)]), bins=0)


class TestRenderAscii:
    def test_shape(self):
        m = make_matrix(64, [(i, (i + 1) % 64, 100) for i in range(64)])
        art = render_ascii(m, bins=16)
        lines = art.split("\n")
        assert len(lines) == 16
        assert all(len(line) == 16 for line in lines)

    def test_empty_matrix_blank(self):
        art = render_ascii(make_matrix(8, []), bins=4)
        assert set(art) <= {" ", "\n"}

    def test_heavier_cells_darker(self):
        m = make_matrix(4, [(0, 1, 10**9), (2, 3, 1)])
        art = render_ascii(m, bins=4).split("\n")
        shades = " .:-=+*#%@"
        assert shades.index(art[0][1]) > shades.index(art[2][3])


class TestHeatmapSummary:
    def test_diagonal_share(self):
        m = make_matrix(8, [(0, 1, 90), (0, 7, 10)])
        s = heatmap_summary(m, band=1)
        assert s.diagonal_band_share == pytest.approx(0.9)

    def test_fill(self):
        m = make_matrix(4, [(0, 1, 1), (2, 3, 1)])
        s = heatmap_summary(m)
        assert s.fill == pytest.approx(2 / 12)

    def test_self_traffic_excluded(self):
        m = make_matrix(4, [(0, 0, 10**9), (0, 1, 5)])
        s = heatmap_summary(m)
        assert s.fill == pytest.approx(1 / 12)
        assert s.diagonal_band_share == pytest.approx(1.0)

    def test_concentration(self):
        m = make_matrix(8, [(0, 1, 10**6)] + [(i, 7 - i, 1) for i in range(3)])
        s = heatmap_summary(m)
        assert s.top_pairs_for_90pct == 1
        assert s.concentration < 0.05

    def test_empty(self):
        s = heatmap_summary(make_matrix(4, []))
        assert s.fill == 0.0 and s.gini == 0.0

    def test_lulesh_structure(self, lulesh64_p2p):
        s = heatmap_summary(lulesh64_p2p)
        assert 0.1 < s.fill < 0.5  # 26 of 63 partners
        assert s.gini > 0.3  # faces dominate


class TestMesh3D:
    def test_no_wraparound(self):
        mesh = Mesh3D((4, 1, 1))
        torus = Torus3D((4, 1, 1))
        assert mesh.hops(0, 3) == 3  # torus would wrap in 1
        assert torus.hops(0, 3) == 1

    def test_diameter(self):
        assert Mesh3D((4, 4, 4)).diameter == 9
        assert Torus3D((4, 4, 4)).diameter == 6

    def test_mesh_hops_at_least_torus(self):
        mesh = Mesh3D((4, 4, 4))
        torus = Torus3D((4, 4, 4))
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, 500)
        dst = rng.integers(0, 64, 500)
        assert np.all(mesh.hops_array(src, dst) >= torus.hops_array(src, dst))

    def test_route_length_equals_hops(self):
        mesh = Mesh3D((3, 3, 3))
        rng = np.random.default_rng(1)
        src = rng.integers(0, 27, 200)
        dst = rng.integers(0, 27, 200)
        inc = mesh.route_incidence(src, dst)
        counted = np.bincount(inc.pair_index, minlength=200)
        assert np.array_equal(counted, mesh.hops_array(src, dst))

    def test_link_count(self):
        mesh = Mesh3D((4, 3, 2))
        assert mesh.num_links == 3 * 3 * 2 + 4 * 2 * 2 + 4 * 3 * 1

    def test_nominal_links_scales(self):
        mesh = Mesh3D((4, 4, 4))
        assert mesh.nominal_links(64) == pytest.approx(mesh.num_links)
        assert mesh.nominal_links(32) == pytest.approx(mesh.num_links / 2)

    def test_wrap_links_never_used(self):
        mesh = Mesh3D((4, 4, 4))
        n = mesh.num_nodes
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        inc = mesh.route_incidence(src.ravel(), dst.ravel())
        # only (dims-1) links per row exist; all used ids must be owned by
        # nodes that are not at the +end of their dimension
        coords = mesh.coordinates(inc.link_id // 3)
        dims = np.array(mesh.dims)
        owner_dim = (inc.link_id % 3).astype(int)
        at_edge = coords[np.arange(len(owner_dim)), owner_dim] == dims[owner_dim] - 1
        assert not at_edge.any()

    def test_describe(self):
        assert "mesh link" in Mesh3D((2, 2, 2)).describe_link(0)
