"""Tests for the weighted-quantile helper."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.weighted import weighted_quantile


class TestBasics:
    def test_single_value(self):
        assert weighted_quantile(np.array([5.0]), np.array([1.0]), 0.9) == 5.0

    def test_equal_weights_coverage_convention(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        wts = np.ones(5)
        # right-edge coverage: value 2 covers 40%, value 3 covers 60%
        assert weighted_quantile(vals, wts, 0.5) == pytest.approx(2.5)
        assert weighted_quantile(vals, wts, 0.6) == pytest.approx(3.0)

    def test_heavy_weight_dominates_near_full_coverage(self):
        vals = np.array([1.0, 100.0])
        wts = np.array([1.0, 1e9])
        assert weighted_quantile(vals, wts, 0.999) == pytest.approx(100.0, rel=1e-2)

    def test_monotone_in_q(self):
        rng = np.random.default_rng(0)
        vals = rng.random(50)
        wts = rng.random(50) + 0.01
        qs = [weighted_quantile(vals, wts, q) for q in np.linspace(0, 1, 11)]
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_unsorted_input(self):
        vals = np.array([3.0, 1.0, 2.0])
        wts = np.array([1.0, 1.0, 1.0])
        assert weighted_quantile(vals, wts, 2 / 3) == pytest.approx(2.0)

    def test_dominant_first_value_clamps(self):
        # 95% of weight at distance 1: the 90% coverage distance is 1
        v = weighted_quantile(np.array([1.0, 7.0]), np.array([95.0, 5.0]), 0.9)
        assert v == pytest.approx(1.0)

    def test_duplicates_merged(self):
        v = weighted_quantile(
            np.array([1.0, 1.0, 5.0]), np.array([45.0, 45.0, 10.0]), 0.9
        )
        assert v == pytest.approx(1.0)

    def test_interpolation_is_fractional(self):
        # 90% quantile of {1 (80%), 10 (20%)} sits between the two values
        v = weighted_quantile(np.array([1.0, 10.0]), np.array([8.0, 2.0]), 0.9)
        assert 1.0 < v < 10.0


class TestValidation:
    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([1.0]), 1.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([]), np.array([]), 0.5)

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0, 2.0]), np.array([1.0, -1.0]), 0.5)

    def test_zero_total_weight(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([0.0]), 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0, 2.0]), np.array([1.0]), 0.5)


class TestDegenerateInputs:
    """Zero-weight entries must not distort the quantile (regression: a
    zero-weight value used to anchor the interpolation span and pull the
    result below every supported value)."""

    def test_zero_weight_values_ignored(self):
        v = weighted_quantile(
            np.array([1.0, 2.0, 3.0]), np.array([0.0, 0.0, 5.0]), 0.9
        )
        assert v == 3.0

    def test_zero_weight_minimum_does_not_anchor(self):
        # Without the support filter this returned ~2.9 (interpolating from
        # the weightless 1.0) instead of the only supported value.
        v = weighted_quantile(
            np.array([1.0, 3.0]), np.array([0.0, 10.0]), 0.5
        )
        assert v == 3.0

    def test_extremes_over_supported_values_only(self):
        vals = np.array([-50.0, 2.0, 4.0, 99.0])
        wts = np.array([0.0, 1.0, 1.0, 0.0])
        assert weighted_quantile(vals, wts, 0.0) == 2.0
        assert weighted_quantile(vals, wts, 1.0) == 4.0

    def test_single_supported_value_any_quantile(self):
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert (
                weighted_quantile(
                    np.array([7.0, 1.0]), np.array([3.0, 0.0]), q
                )
                == 7.0
            )

    def test_all_equal_values(self):
        vals = np.full(9, 4.25)
        wts = np.arange(9, dtype=float) + 1
        for q in (0.0, 0.5, 1.0):
            assert weighted_quantile(vals, wts, q) == 4.25

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(0, 10, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ).filter(lambda ps: any(w > 0 for _, w in ps)),
        st.floats(0, 1),
    )
    def test_result_within_supported_range(self, pairs, q):
        vals = np.array([v for v, _ in pairs])
        wts = np.array([w for _, w in pairs])
        supported = vals[wts > 0]
        result = weighted_quantile(vals, wts, q)
        assert supported.min() - 1e-9 <= result <= supported.max() + 1e-9

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30),
        st.floats(0, 1),
    )
    def test_zero_weight_padding_is_inert(self, vals, q):
        values = np.array(vals)
        weights = np.ones(len(vals))
        base = weighted_quantile(values, weights, q)
        padded_vals = np.concatenate([values, values * 7 + 1000])
        padded_wts = np.concatenate([weights, np.zeros(len(vals))])
        assert weighted_quantile(padded_vals, padded_wts, q) == base


@given(
    st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=60),
    st.floats(0, 1),
)
def test_quantile_within_range(vals, q):
    values = np.array(vals)
    weights = np.ones(len(vals))
    result = weighted_quantile(values, weights, q)
    assert values.min() - 1e-9 <= result <= values.max() + 1e-9


@given(st.lists(st.integers(1, 100), min_size=2, max_size=40))
def test_extremes(vals):
    values = np.array(vals, dtype=float)
    weights = np.ones(len(vals))
    assert weighted_quantile(values, weights, 0.0) == values.min()
    assert weighted_quantile(values, weights, 1.0) == values.max()
