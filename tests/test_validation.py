"""Tests for the generator self-validation framework."""

import pytest

from repro.apps.registry import get_app
from repro.apps.validation import (
    ValidationIssue,
    ValidationResult,
    validate_all,
    validate_app,
)
from repro.cli import main


class TestValidateApp:
    def test_clean_configuration(self):
        result = validate_app(get_app("LULESH"), 64)
        assert result.ok
        assert result.checked == 1

    def test_all_collective_app(self):
        result = validate_app(get_app("BigFFT"), 9)
        assert result.ok

    def test_derived_type_app(self):
        result = validate_app(get_app("SNAP"), 168)
        assert result.ok

    def test_unknown_configuration_raises(self):
        with pytest.raises(KeyError):
            validate_app(get_app("AMG"), 999)

    def test_detects_broken_calibration(self):
        """A generator whose pattern ignores its byte targets is flagged."""
        import numpy as np

        from repro.apps.base import AppPattern, CalibrationPoint, Channels, SyntheticApp

        class Broken(SyntheticApp):
            name = "LULESH"  # reuse a known peers expectation
            calibration = (CalibrationPoint(64, 1.0, 100.0, 0.5),)

            def pattern(self, ranks, rng):
                # all-p2p pattern although the calibration claims a 50%
                # collective share -> p2p-share check must fire
                return AppPattern(
                    channels=Channels(
                        np.array([0]), np.array([1]), np.array([1.0])
                    )
                )

        result = validate_app(Broken(), 64)
        assert not result.ok
        kinds = {i.kind for i in result.issues}
        assert "calibration" in kinds
        # single heavy pair also violates the LULESH peers band
        assert "structure" in kinds

    def test_issue_rendering(self):
        issue = ValidationIssue("X@8", "structure", "boom")
        assert str(issue) == "[structure] X@8: boom"


class TestValidateAll:
    def test_small_grid_clean(self):
        result = validate_all(max_ranks=70)
        assert result.ok, result.summary()
        assert result.checked >= 10

    def test_merge(self):
        a = ValidationResult(checked=1)
        b = ValidationResult(checked=2, issues=[ValidationIssue("x", "k", "m")])
        a.merge(b)
        assert a.checked == 3
        assert not a.ok
        assert "1 issue" in a.summary()


class TestCLI:
    def test_validate_command(self, capsys):
        code = main(["validate", "--max-ranks", "30"])
        assert code == 0
        assert "no issues" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--app", "MiniFE", "--ranks", "18", "--volume-scale", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static utilization" in out and "congested packets" in out
