"""EventBlock columnar storage: round trips, validation, and trace views."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    KIND_COLLECTIVE,
    KIND_P2P_SEND,
    OP_CODE,
    OPS,
    EventBlock,
)
from repro.core.communicator import CommunicatorTable
from repro.core.events import CollectiveEvent, CollectiveOp, Direction, P2PEvent
from repro.core.trace import Trace, TraceMetadata

from helpers import make_trace


def _random_events(rng: np.random.Generator, n: int, num_ranks: int = 16):
    """A mixed stream of p2p and collective records."""
    events = []
    for _ in range(n):
        caller = int(rng.integers(num_ranks))
        if rng.random() < 0.5:
            direction = Direction.SEND if rng.random() < 0.8 else Direction.RECV
            func = "MPI_Isend" if direction is Direction.SEND else "MPI_Irecv"
            events.append(
                P2PEvent(
                    caller=caller,
                    peer=int(rng.integers(num_ranks)),
                    count=int(rng.integers(1, 10_000)),
                    dtype=str(rng.choice(["MPI_BYTE", "MPI_DOUBLE", "MPI_INT"])),
                    direction=direction,
                    tag=int(rng.integers(100)),
                    repeat=int(rng.integers(1, 5)),
                    func=func,
                    t_enter=float(rng.random()),
                    t_leave=float(rng.random()) + 1.0,
                )
            )
        else:
            op = OPS[int(rng.integers(len(OPS)))]
            events.append(
                CollectiveEvent(
                    caller=caller,
                    op=op,
                    count=0 if op is CollectiveOp.BARRIER else int(rng.integers(1, 5000)),
                    dtype=str(rng.choice(["MPI_BYTE", "MPI_DOUBLE"])),
                    root=int(rng.integers(num_ranks)),
                    repeat=int(rng.integers(1, 4)),
                )
            )
    return events


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 60))
    def test_events_to_block_to_events_is_identity(self, seed, n):
        rng = np.random.default_rng(seed)
        events = _random_events(rng, n)
        assert EventBlock.from_events(events).to_events() == events

    def test_empty_block(self):
        block = EventBlock.from_events([])
        assert len(block) == 0
        assert block.to_events() == []
        assert block.num_calls == 0

    def test_trace_events_view_of_native_blocks(self):
        rng = np.random.default_rng(7)
        events = _random_events(rng, 40)
        block = EventBlock.from_events(events)
        meta = TraceMetadata(app="X", num_ranks=16, execution_time=1.0)
        trace = Trace.from_blocks(meta, [block])
        assert trace.has_native_blocks
        assert trace.events == events
        assert len(trace) == len(events)

    def test_trace_blocks_view_of_event_list(self):
        rng = np.random.default_rng(8)
        events = _random_events(rng, 30)
        trace = make_trace(16)
        for ev in events:
            trace.add(ev)
        assert not trace.has_native_blocks
        blocks = trace.blocks()
        assert len(blocks) == 1
        assert blocks[0].to_events() == events

    def test_traces_compare_equal_across_storage(self):
        rng = np.random.default_rng(9)
        events = _random_events(rng, 25)
        by_events = make_trace(16)
        for ev in events:
            by_events.add(ev)
        by_blocks = Trace.from_blocks(
            by_events.meta, [EventBlock.from_events(events)]
        )
        assert by_events == by_blocks

    def test_add_after_blocks_invalidates_columnar_view(self):
        trace = make_trace(4)
        trace.add(P2PEvent(caller=0, peer=1, count=10, dtype="MPI_BYTE"))
        first = trace.blocks()
        assert len(first[0]) == 1
        trace.add(P2PEvent(caller=1, peer=2, count=20, dtype="MPI_BYTE"))
        assert len(trace.blocks()[0]) == 2

    def test_interned_tables_are_first_seen_order(self):
        events = [
            P2PEvent(caller=0, peer=1, count=1, dtype="MPI_DOUBLE"),
            P2PEvent(caller=1, peer=2, count=1, dtype="MPI_BYTE"),
            P2PEvent(caller=2, peer=3, count=1, dtype="MPI_DOUBLE"),
        ]
        block = EventBlock.from_events(events)
        assert block.dtype_names == ("MPI_DOUBLE", "MPI_BYTE")
        assert block.dtype_id.tolist() == [0, 1, 0]

    def test_op_codes_cover_all_collectives(self):
        assert len(OP_CODE) == len(OPS)
        for op in CollectiveOp:
            assert OPS[OP_CODE[op]] is op


class TestValidation:
    def _world_block(self, **overrides):
        base = dict(
            kind=[KIND_P2P_SEND],
            caller=[0],
            peer=[1],
            count=[10],
            dtype_id=[0],
            op=[-1],
            root=[0],
            comm_id=[0],
            tag=[0],
            func_id=[-1],
            repeat=[1],
            t_enter=[0.0],
            t_leave=[0.0],
        )
        base.update(overrides)
        return EventBlock(**base)

    def test_caller_out_of_range_rejected(self):
        block = self._world_block(caller=[9])
        with pytest.raises(ValueError, match="out of range"):
            block.check(4, CommunicatorTable.for_world(4))

    def test_negative_peer_on_p2p_rejected(self):
        block = self._world_block(peer=[-1])
        with pytest.raises(ValueError, match="non-negative"):
            block.check(4, CommunicatorTable.for_world(4))

    def test_negative_count_rejected(self):
        block = self._world_block(count=[-5])
        with pytest.raises(ValueError, match="count must be non-negative"):
            block.check(4, CommunicatorTable.for_world(4))

    def test_zero_repeat_rejected(self):
        block = self._world_block(repeat=[0])
        with pytest.raises(ValueError, match="repeat must be >= 1"):
            block.check(4, CommunicatorTable.for_world(4))

    def test_barrier_with_payload_rejected(self):
        block = self._world_block(
            kind=[KIND_COLLECTIVE],
            peer=[-1],
            op=[OP_CODE[CollectiveOp.BARRIER]],
            func_id=[-1],
            count=[3],
        )
        with pytest.raises(ValueError, match="MPI_Barrier carries no payload"):
            block.check(4, CommunicatorTable.for_world(4))

    def test_unknown_communicator_rejected(self):
        block = self._world_block(comm_names=("comm_sub",))
        with pytest.raises(ValueError, match="unknown communicator"):
            block.check(4, CommunicatorTable.for_world(4))

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            self._world_block(caller=[0, 1])

    def test_valid_block_passes(self):
        self._world_block().check(4, CommunicatorTable.for_world(4))
