"""Tests for selectivity and selectivity curves (paper §4.1.2, Figs 1/3/4)."""

import math

import numpy as np
import pytest

from repro.metrics.selectivity import (
    mean_selectivity_curve,
    partner_volumes,
    per_rank_selectivity,
    selectivity,
    selectivity_curve,
)

from helpers import make_matrix


class TestPerRank:
    def test_single_dominant_partner(self):
        m = make_matrix(4, [(0, 1, 10000), (0, 2, 1), (0, 3, 1)])
        assert per_rank_selectivity(m)[0] == 1

    def test_equal_partners(self):
        # four equal partners: 90% needs all four (3 cover only 75%)
        m = make_matrix(5, [(0, d, 100) for d in (1, 2, 3, 4)])
        assert per_rank_selectivity(m)[0] == 4

    def test_exact_threshold_boundary(self):
        # 9 partners of 10% each + one of 10%: top 9 cover exactly 90%
        m = make_matrix(11, [(0, d, 100) for d in range(1, 11)])
        assert per_rank_selectivity(m)[0] == 9

    def test_share_parameter(self):
        m = make_matrix(5, [(0, d, 100) for d in (1, 2, 3, 4)])
        assert per_rank_selectivity(m, share=0.5)[0] == 2

    def test_silent_ranks_absent(self):
        m = make_matrix(4, [(0, 1, 100)])
        assert set(per_rank_selectivity(m)) == {0}

    def test_self_traffic_ignored(self):
        m = make_matrix(4, [(0, 0, 10**9), (0, 1, 10)])
        assert per_rank_selectivity(m)[0] == 1

    def test_invalid_share(self):
        m = make_matrix(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            per_rank_selectivity(m, share=0.0)


class TestAppLevel:
    def test_mean_over_ranks(self):
        m = make_matrix(
            6,
            [(0, 1, 100)]  # rank 0: selectivity 1
            + [(1, d, 100) for d in (2, 3, 4)],  # rank 1: selectivity 3
        )
        assert selectivity(m) == pytest.approx(2.0)

    def test_no_p2p_is_nan(self):
        assert math.isnan(selectivity(make_matrix(4, [])))

    def test_lulesh_band(self, lulesh64_p2p):
        # paper: 4.5 for LULESH@64
        assert 3.5 <= selectivity(lulesh64_p2p) <= 5.5


class TestCurves:
    def test_partner_volumes_sorted_descending(self, lulesh64_p2p):
        vols = partner_volumes(lulesh64_p2p, 0)
        assert np.all(np.diff(vols) <= 0)
        assert len(vols) >= 7  # corner rank of a 4x4x4 halo

    def test_selectivity_curve_monotone_to_one(self):
        m = make_matrix(5, [(0, d, v) for d, v in [(1, 50), (2, 30), (3, 20)]])
        curve = selectivity_curve(m, 0)
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == pytest.approx(1.0)
        assert curve[0] == pytest.approx(0.5)

    def test_empty_curve_for_silent_rank(self):
        m = make_matrix(3, [(0, 1, 10)])
        assert len(selectivity_curve(m, 2)) == 0

    def test_mean_curve_pads_with_one(self):
        m = make_matrix(
            5, [(0, 1, 100), (1, 2, 50), (1, 3, 50)]
        )  # rank 0 has 1 partner, rank 1 has 2
        curve = mean_selectivity_curve(m)
        assert len(curve) == 2
        assert curve[0] == pytest.approx((1.0 + 0.5) / 2)
        assert curve[-1] == pytest.approx(1.0)

    def test_mean_curve_max_partners(self, lulesh64_p2p):
        curve = mean_selectivity_curve(lulesh64_p2p, max_partners=5)
        assert len(curve) == 5

    def test_mean_curve_empty(self):
        assert len(mean_selectivity_curve(make_matrix(3, []))) == 0

    def test_mean_curve_consistent_with_selectivity(self, lulesh64_p2p):
        """The curve's 90% crossing tracks the scalar metric within a step."""
        curve = mean_selectivity_curve(lulesh64_p2p)
        crossing = int(np.searchsorted(curve, 0.9 - 1e-9)) + 1
        assert abs(crossing - selectivity(lulesh64_p2p)) <= 2.5
