"""Tests for the dragonfly model (palm-tree globals, minimal routing)."""

import numpy as np
import pytest

from repro.topology.dragonfly import Dragonfly


class TestStructure:
    @pytest.mark.parametrize(
        "ahp,nodes",
        [((4, 2, 2), 72), ((6, 3, 3), 342), ((8, 4, 4), 1056), ((10, 5, 5), 2550)],
    )
    def test_table2_node_counts(self, ahp, nodes):
        df = Dragonfly(*ahp)
        assert df.num_nodes == nodes
        assert df.is_balanced

    def test_group_count(self):
        assert Dragonfly(4, 2, 2).num_groups == 9

    def test_nominal_links_per_node_band(self):
        # paper: 3.5 to 3.8 links/node for the standard configurations
        for ahp, expected in [
            ((4, 2, 2), 3.5),
            ((6, 3, 3), 11 / 3),
            ((8, 4, 4), 3.75),
            ((10, 5, 5), 3.8),
        ]:
            df = Dragonfly(*ahp)
            ratio = df.nominal_links(df.num_nodes) / df.num_nodes
            assert ratio == pytest.approx(expected)
            assert 3.5 <= ratio <= 3.8

    def test_validation(self):
        with pytest.raises(ValueError):
            Dragonfly(0, 1, 1)


class TestPalmTree:
    def test_gateway_roundtrip(self):
        """Both ends agree on the single global link between two groups."""
        df = Dragonfly(4, 2, 2)
        g = df.num_groups
        for g1 in range(g):
            for g2 in range(g):
                if g1 == g2:
                    continue
                r12_src, r12_dst = df.gateway_routers(np.array([g1]), np.array([g2]))
                r21_src, r21_dst = df.gateway_routers(np.array([g2]), np.array([g1]))
                # the link g1->g2 lands on the router that g2 uses to reach g1
                assert r12_dst[0] == r21_src[0]
                assert r12_src[0] == r21_dst[0]

    def test_every_router_owns_h_global_ports(self):
        df = Dragonfly(4, 2, 2)
        g = df.num_groups
        for g1 in range(g):
            counts = np.zeros(df.a, dtype=int)
            for g2 in range(g):
                if g1 == g2:
                    continue
                r, _ = df.gateway_routers(np.array([g1]), np.array([g2]))
                counts[r[0]] += 1
            assert np.all(counts == df.h)

    def test_one_global_link_per_group_pair(self):
        df = Dragonfly(4, 2, 2)
        ids = set()
        g = df.num_groups
        for g1 in range(g):
            for g2 in range(g1 + 1, g):
                lid = df._global_link_id(np.array([g1]), np.array([g2]))[0]
                assert lid not in ids
                ids.add(int(lid))
        assert len(ids) == g * (g - 1) // 2


class TestHops:
    def test_bounds_two_to_five(self):
        df = Dragonfly(4, 2, 2)
        n = df.num_nodes
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        hops = df.hops_array(src.ravel(), dst.ravel())
        off = src.ravel() != dst.ravel()
        assert hops[off].min() == 2
        assert hops[off].max() == 5
        assert df.diameter == 5

    def test_same_router(self):
        df = Dragonfly(4, 2, 2)  # p=2: nodes 0,1 on router 0
        assert df.hops(0, 1) == 2

    def test_same_group_different_router(self):
        df = Dragonfly(4, 2, 2)
        assert df.hops(0, 2) == 3

    def test_cross_group_range(self):
        df = Dragonfly(4, 2, 2)
        # group 0 node 0 (router 0) to group 1: router 0 owns ports 0,1 ->
        # groups 1 and 2 reachable without a source-side detour
        h = df.hops(0, 8)  # first node of group 1
        assert 3 <= h <= 5

    def test_symmetry(self):
        df = Dragonfly(6, 3, 3)
        rng = np.random.default_rng(0)
        a = rng.integers(0, df.num_nodes, 400)
        b = rng.integers(0, df.num_nodes, 400)
        assert np.array_equal(df.hops_array(a, b), df.hops_array(b, a))

    def test_crosses_groups(self):
        df = Dragonfly(4, 2, 2)
        assert not df.crosses_groups(np.array([0]), np.array([7]))[0]
        assert df.crosses_groups(np.array([0]), np.array([8]))[0]

    def test_paper_amg8_band(self):
        """8 consecutive nodes fill one (4,2,2) group: mean ~2.86 (paper 2.83)."""
        df = Dragonfly(4, 2, 2)
        src, dst = np.meshgrid(np.arange(8), np.arange(8))
        hops = df.hops_array(src.ravel(), dst.ravel())
        off = src.ravel() != dst.ravel()
        assert hops[off].mean() == pytest.approx(20 / 7, abs=0.01)


class TestRoutes:
    @pytest.mark.parametrize("ahp", [(4, 2, 2), (6, 3, 3)])
    def test_route_length_equals_hops(self, ahp):
        df = Dragonfly(*ahp)
        rng = np.random.default_rng(1)
        src = rng.integers(0, df.num_nodes, 400)
        dst = rng.integers(0, df.num_nodes, 400)
        inc = df.route_incidence(src, dst)
        counted = np.bincount(inc.pair_index, minlength=400)
        assert np.array_equal(counted, df.hops_array(src, dst))

    def test_cross_group_route_contains_exactly_one_global_link(self):
        df = Dragonfly(4, 2, 2)
        rng = np.random.default_rng(2)
        src = rng.integers(0, 8, 100)  # group 0
        dst = rng.integers(8, df.num_nodes, 100)  # other groups
        inc = df.route_incidence(src, dst)
        global_mask = df.is_global_link(inc.link_id)
        per_pair = np.bincount(inc.pair_index[global_mask], minlength=100)
        assert np.all(per_pair == 1)

    def test_intra_group_route_has_no_global_link(self):
        df = Dragonfly(4, 2, 2)
        inc = df.route_incidence(np.array([0, 0]), np.array([3, 7]))
        assert not df.is_global_link(inc.link_id).any()

    def test_local_link_ids_within_namespace(self):
        df = Dragonfly(4, 2, 2)
        inc = df.route_incidence(np.array([0]), np.array([6]))
        local = [
            lid
            for lid in inc.link_id
            if df._local_base <= lid < df._global_base
        ]
        assert len(local) == 1

    def test_describe_link(self):
        df = Dragonfly(4, 2, 2)
        assert "node link" in df.describe_link(0)
        assert "local link" in df.describe_link(df._local_base)
        assert "global link" in df.describe_link(df._global_base)
