"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_table1(self, capsys):
        out = run(capsys, "table1", "--max-ranks", "30")
        assert "AMG@8" in out and "Vol[MB]" in out

    def test_table2(self, capsys):
        out = run(capsys, "table2")
        assert "(16,8,8)" in out

    def test_table3(self, capsys):
        out = run(capsys, "table3", "--max-ranks", "30")
        assert "torus" in out and "AMG@27" in out

    def test_table4(self, capsys):
        out = run(capsys, "table4", "--max-ranks", "70")
        assert "LULESH" in out

    def test_figure1(self, capsys):
        out = run(capsys, "figure1", "--app", "LULESH", "--ranks", "64")
        assert "cum share" in out

    def test_figure3(self, capsys):
        out = run(capsys, "figure3", "--max-ranks", "30")
        assert "partners@90%" in out

    def test_figure4(self, capsys):
        out = run(capsys, "figure4", "--app", "CrystalRouter")
        assert "CrystalRouter@10" in out

    def test_figure5(self, capsys):
        out = run(capsys, "figure5", "--min-ranks", "500", "--max-ranks", "600")
        assert "1c:1.00" in out

    def test_claims(self, capsys):
        out = run(capsys, "claims", "--max-ranks", "30")
        assert "selectivity" in out

    def test_apps(self, capsys):
        out = run(capsys, "apps")
        assert "SNAP" in out and "(*)" in out

    def test_trace_to_stdout(self, capsys):
        out = run(capsys, "trace", "--app", "MiniFE", "--ranks", "18")
        assert out.startswith("%repro-dumpi 1")
        assert "P2P MPI_Isend" in out

    def test_trace_to_file(self, capsys, tmp_path):
        path = tmp_path / "t.dumpi.txt"
        out = run(
            capsys, "trace", "--app", "MiniFE", "--ranks", "18", "--out", str(path)
        )
        assert path.exists()
        assert "wrote MiniFE@18" in out

    def test_trace_roundtrips_through_parser(self, capsys, tmp_path):
        from repro.dumpi.parser import load_trace

        path = tmp_path / "t.dumpi.txt"
        run(capsys, "trace", "--app", "CrystalRouter", "--ranks", "10", "--out", str(path))
        trace = load_trace(path)
        assert trace.meta.app == "CrystalRouter"
        assert trace.meta.num_ranks == 10


class TestErrorPaths:
    """User errors exit nonzero with a one-line message, never a traceback."""

    def fail(self, capsys, *argv, code=2):
        rc = main(list(argv))
        captured = capsys.readouterr()
        assert rc == code, captured.err
        err_lines = [l for l in captured.err.splitlines() if l]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: ")
        assert "Traceback" not in captured.err
        return err_lines[0]

    def test_unknown_app(self, capsys):
        msg = self.fail(capsys, "figure1", "--app", "Nope", "--ranks", "64")
        assert "Nope" in msg

    def test_unknown_topology_in_check(self, capsys):
        msg = self.fail(capsys, "check", "--max-ranks", "8", "--topologies", "hypercube")
        assert "hypercube" in msg

    def test_unknown_routing_in_check(self, capsys):
        msg = self.fail(capsys, "check", "--max-ranks", "8", "--routings", "bogus")
        assert "bogus" in msg

    def test_missing_convert_dir(self, capsys, tmp_path):
        msg = self.fail(capsys, "convert", "--dir", str(tmp_path / "nope"), "--app", "X")
        assert "error: " in msg


class TestCheckCommand:
    def test_check_passes_on_small_grid(self, capsys):
        rc = main(
            [
                "check",
                "--max-ranks",
                "10",
                "--topologies",
                "torus3d",
                "--routings",
                "minimal",
                "--no-sim",
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_check_verbose_lists_scenarios(self, capsys):
        rc = main(
            [
                "check",
                "--max-ranks",
                "10",
                "--topologies",
                "torus3d",
                "--routings",
                "minimal",
                "--no-sim",
                "--verbose",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "ok (" in out


class TestFuzzCommand:
    def test_fuzz_smoke_seed(self, capsys):
        rc = main(["fuzz", "--count", "1", "--target-packets", "2000"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "0 failure(s)" in captured.out
