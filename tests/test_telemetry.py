"""The telemetry subsystem: collectors, congestion analysis, and plumbing.

Covers the three pillars of the subsystem:

1. **Bit-identity** — both sim engines feed the collector the same service
   multiset, so the finalized :class:`TelemetryReport` is exactly equal
   (every array bitwise) seed for seed, across topologies, load regimes,
   and routing policies.
2. **Congestion analysis** — hot-link thresholding, spatio-temporal region
   grouping, and the adversarial-traffic routing comparison: UGAL's
   congestion regions are strictly smaller and shorter than minimal's.
3. **Plumbing** — null-collector transparency, npz/json round trips, sweep
   integration, cache-key hygiene, and the CLI surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from helpers import make_matrix

from repro import cache
from repro.analysis.sweep import SweepSpec, run_sweep
from repro.cli import main as cli_main
from repro.sim import simulate_network
from repro.sim.common import prepare_simulation
from repro.sim.engine import resolve_collector, run_batched
from repro.sim.reference import run_reference
from repro.telemetry import (
    NullCollector,
    TelemetryConfig,
    WindowedCollector,
    adversarial_hot_group_matrix,
    congestion_by_routing,
    congestion_summary,
    find_congestion_regions,
    load_report_npz,
    render_congestion_timeline,
    render_summary,
    report_to_json_dict,
    reports_equal,
    save_report_json,
    save_report_npz,
)
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D

TOPOLOGIES = [
    pytest.param(Torus3D((3, 3, 3)), id="torus3d"),
    pytest.param(FatTree(8, 3), id="fattree"),
    pytest.param(Dragonfly(4, 2, 2), id="dragonfly"),
]

REGIMES = [
    pytest.param(1.0, id="sparse"),
    pytest.param(5e-4, id="dense"),
    pytest.param(5e-5, id="congested"),
]


def _spread_matrix(num_ranks: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    pairs = []
    for src in range(num_ranks):
        for dst in rng.choice(num_ranks, size=4, replace=False):
            if int(dst) != src:
                pairs.append((src, int(dst), int(rng.integers(1, 30)) * 4096))
    return make_matrix(num_ranks, pairs)


def _instrumented_pair(setup, config=None):
    """Run both engines over one setup, each with a fresh collector."""
    ref = run_reference(setup, collector=WindowedCollector(config))
    bat = run_batched(setup, collector=WindowedCollector(config))
    return ref, bat


class TestBitIdentity:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("execution_time", REGIMES)
    def test_reports_bit_identical(self, topology, execution_time):
        setup = prepare_simulation(
            _spread_matrix(27, seed=1),
            topology,
            execution_time=execution_time,
            seed=3,
        )
        ref, bat = _instrumented_pair(setup)
        assert ref.telemetry is not None and bat.telemetry is not None
        assert reports_equal(ref.telemetry, bat.telemetry)

    @pytest.mark.parametrize("routing", ["minimal", "valiant", "ugal"])
    def test_reports_bit_identical_per_policy(self, routing):
        topo = Dragonfly(4, 2, 2)
        setup = prepare_simulation(
            _spread_matrix(27, seed=2),
            topo,
            execution_time=2e-4,
            seed=5,
            routing=routing,
            routing_seed=1,
        )
        ref, bat = _instrumented_pair(setup)
        assert reports_equal(ref.telemetry, bat.telemetry)

    def test_tie_storm_reports_identical(self):
        matrix = make_matrix(8, [(0, 1, 400 * 4096)])
        setup = prepare_simulation(
            matrix, Torus3D((2, 2, 2)), execution_time=1e-5, seed=11
        )
        config = TelemetryConfig(windows=7, queue_depth_bins=8)
        ref, bat = _instrumented_pair(setup, config)
        assert reports_equal(ref.telemetry, bat.telemetry)

    def test_simulate_network_engines_match(self):
        matrix = _spread_matrix(27, seed=4)
        kw = dict(
            execution_time=4e-4, seed=2, telemetry=TelemetryConfig(windows=12)
        )
        a = simulate_network(matrix, FatTree(8, 3), engine="batched", **kw)
        b = simulate_network(matrix, FatTree(8, 3), engine="reference", **kw)
        assert reports_equal(a.telemetry, b.telemetry)


class TestResultLinkFields:
    """Satellite: per-link serve counts and peak occupancy on the result."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_serve_counts_identical_between_engines(self, topology):
        setup = prepare_simulation(
            _spread_matrix(27, seed=6), topology, execution_time=3e-4, seed=1
        )
        ref = run_reference(setup)
        bat = run_batched(setup)
        assert np.array_equal(ref.link_ids, bat.link_ids)
        assert np.array_equal(ref.link_serve_counts, bat.link_serve_counts)
        assert np.array_equal(ref.link_ids, setup.link_ids)
        assert ref.link_serve_counts.sum() == setup.total_hops
        assert ref.peak_link_busy_fraction == bat.peak_link_busy_fraction

    def test_peak_link_busy_fraction_definition(self):
        setup = prepare_simulation(
            _spread_matrix(27, seed=6),
            Torus3D((3, 3, 3)),
            execution_time=3e-4,
            seed=1,
        )
        result = run_batched(setup)
        expected = (
            float(result.link_serve_counts.max())
            * setup.service
            / result.makespan
        )
        assert result.peak_link_busy_fraction == pytest.approx(expected)
        assert 0.0 < result.peak_link_busy_fraction <= 1.0

    def test_empty_simulation_has_no_link_fields(self):
        result = simulate_network(make_matrix(8, []), Torus3D((2, 2, 2)))
        assert result.peak_link_busy_fraction == 0.0
        assert result.telemetry is None


class TestCollectorPlumbing:
    def test_default_run_has_no_telemetry(self):
        result = simulate_network(
            _spread_matrix(27, seed=0), Torus3D((3, 3, 3)), execution_time=1e-3
        )
        assert result.telemetry is None

    def test_null_collector_is_transparent(self):
        setup = prepare_simulation(
            _spread_matrix(27, seed=0),
            Torus3D((3, 3, 3)),
            execution_time=1e-3,
            seed=2,
        )
        bare = run_batched(setup)
        nulled = run_batched(setup, collector=NullCollector())
        assert nulled == bare
        assert nulled.telemetry is None

    def test_resolve_collector_forms(self):
        assert resolve_collector(None) is None
        assert isinstance(resolve_collector(TelemetryConfig()), WindowedCollector)
        null = NullCollector()
        assert resolve_collector(null) is null
        with pytest.raises(TypeError):
            resolve_collector("windowed")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"windows": 0},
            {"windows": -3},
            {"queue_depth_bins": 1},
            {"stall_octaves": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            TelemetryConfig(**kwargs)


class TestReportInternals:
    @pytest.fixture(scope="class")
    def run(self):
        setup = prepare_simulation(
            _spread_matrix(27, seed=3),
            Dragonfly(4, 2, 2),
            execution_time=2e-4,
            seed=9,
        )
        result = run_batched(
            setup, collector=WindowedCollector(TelemetryConfig(windows=16))
        )
        return setup, result

    def test_serve_series_totals(self, run):
        setup, result = run
        report = result.telemetry
        assert report.serve_series.shape == (setup.num_links, 16)
        assert np.array_equal(
            report.serve_series.sum(axis=1), result.link_serve_counts
        )

    def test_occupancy_accounts_every_service_second(self, run):
        setup, result = run
        report = result.telemetry
        per_link = report.occupancy.sum(axis=1)
        expected = result.link_serve_counts * setup.service
        assert np.allclose(per_link, expected, rtol=1e-9)
        assert report.occupancy_fraction().max() <= 1.0 + 1e-9
        assert report.peak_occupancy > 0.0

    def test_packet_flow_conservation(self, run):
        setup, result = run
        report = result.telemetry
        assert report.injections.sum() == result.packets_simulated
        assert report.ejections.sum() == result.packets_simulated
        assert report.injected_series.sum() == result.packets_simulated
        assert report.delivered_series.sum() == result.packets_simulated
        # Injections are per *source node*, ejections per destination node.
        src_nodes = np.unique(setup.pair_src[setup.inject_pair])
        assert np.all(report.injections[src_nodes] > 0)

    def test_histograms_cover_every_hop(self, run):
        setup, result = run
        report = result.telemetry
        assert report.queue_depth_hist.sum() == setup.total_hops
        assert report.stall_hist.sum() == setup.total_hops
        # Bin zero of the stall histogram is exactly the wait-free hops.
        assert report.stall_hist[0] < setup.total_hops  # congested regime

    def test_window_geometry(self, run):
        _, result = run
        report = result.telemetry
        assert report.span == result.makespan
        assert report.window_dt * report.num_windows == pytest.approx(
            report.span
        )


class TestCongestionRegions:
    def test_quiet_run_has_no_regions(self):
        result = simulate_network(
            _spread_matrix(27, seed=0),
            Torus3D((3, 3, 3)),
            execution_time=1.0,  # sparse: no link is ever near saturation
            telemetry=TelemetryConfig(windows=8),
        )
        topo = Torus3D((3, 3, 3))
        assert find_congestion_regions(result.telemetry, topo, 0.9) == []
        summary = congestion_summary(result.telemetry, topo, 0.9)
        assert summary.num_regions == 0
        assert summary.peak_region_links == 0
        assert summary.longest_region_s == 0.0
        assert summary.first_onset_window == -1

    def test_single_link_storm_is_one_region(self):
        topo = Torus3D((2, 2, 2))
        matrix = make_matrix(8, [(0, 1, 400 * 4096)])
        result = simulate_network(
            matrix,
            topo,
            execution_time=1e-5,
            seed=11,
            telemetry=TelemetryConfig(windows=10),
        )
        regions = find_congestion_regions(result.telemetry, topo, 0.9)
        assert len(regions) == 1
        region = regions[0]
        # One saturated path, hot over essentially the whole makespan.
        assert region.onset_window == 0
        assert region.duration_windows >= 8
        assert region.peak_links >= 1
        assert region.link_windows == region.duration_windows * region.spread
        assert region.duration_s == pytest.approx(
            region.duration_windows * result.telemetry.window_dt
        )

    def test_threshold_validation(self):
        result = simulate_network(
            make_matrix(8, [(0, 1, 40 * 4096)]),
            Torus3D((2, 2, 2)),
            telemetry=TelemetryConfig(windows=4),
        )
        with pytest.raises(ValueError, match="threshold"):
            find_congestion_regions(result.telemetry, Torus3D((2, 2, 2)), 0.0)
        with pytest.raises(ValueError, match="threshold"):
            find_congestion_regions(result.telemetry, Torus3D((2, 2, 2)), 1.5)


class TestAdversarialRoutingComparison:
    """The paper-facing claim: adaptive routing flattens the congestion
    timeline minimal routing produces on hot-group dragonfly traffic."""

    @pytest.fixture(scope="class")
    def records(self):
        topo = Dragonfly(4, 2, 2)
        matrix = adversarial_hot_group_matrix(topo, packets_per_pair=40)
        recs = congestion_by_routing(
            matrix,
            topo,
            routings=("minimal", "valiant", "ugal"),
            execution_time=2e-3,
            threshold=0.4,
            windows=24,
        )
        return {r["routing"]: r for r in recs}

    def test_minimal_sustains_a_congestion_region(self, records):
        minimal = records["minimal"]
        assert minimal["num_regions"] >= 1
        assert minimal["peak_region_links"] >= 1
        assert minimal["longest_region_s"] > 0.0
        assert minimal["hot_windows"] >= 10  # hot for most of the run

    def test_ugal_strictly_below_minimal(self, records):
        minimal, ugal = records["minimal"], records["ugal"]
        assert ugal["peak_region_links"] < minimal["peak_region_links"]
        assert ugal["longest_region_s"] < minimal["longest_region_s"]
        assert ugal["total_hot_seconds"] < minimal["total_hot_seconds"]
        assert ugal["peak_window_occupancy"] < minimal["peak_window_occupancy"]

    def test_ugal_timeline_is_flat(self, records):
        # UGAL spreads the hot-group load over intermediate groups: no link
        # ever crosses the hot threshold at all.
        assert records["ugal"]["hot_windows"] == 0
        assert records["valiant"]["hot_windows"] == 0

    def test_adversarial_matrix_shape(self):
        topo = Dragonfly(4, 2, 2)
        matrix = adversarial_hot_group_matrix(topo, packets_per_pair=5)
        per_group = topo.num_nodes // topo.num_groups
        assert matrix.num_pairs == per_group * per_group


class TestExport:
    @pytest.fixture(scope="class")
    def report(self):
        result = simulate_network(
            _spread_matrix(27, seed=5),
            Dragonfly(4, 2, 2),
            execution_time=3e-4,
            seed=4,
            telemetry=TelemetryConfig(windows=9),
        )
        return result.telemetry

    def test_npz_round_trip_exact(self, report, tmp_path):
        path = save_report_npz(report, tmp_path / "report.npz")
        assert reports_equal(load_report_npz(path), report)

    def test_json_summary(self, report, tmp_path):
        d = report_to_json_dict(report)
        assert d["num_windows"] == 9
        assert len(d["injected_series"]) == 9
        assert "serve_series" not in d
        full = report_to_json_dict(report, series=True)
        assert len(full["serve_series"]) == report.num_links
        path = save_report_json(report, tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["peak_occupancy"] == pytest.approx(report.peak_occupancy)


class TestRender:
    def test_timeline_renders_busiest_links(self):
        topo = Torus3D((2, 2, 2))
        result = simulate_network(
            make_matrix(8, [(0, 1, 400 * 4096)]),
            topo,
            execution_time=1e-5,
            seed=11,
            telemetry=TelemetryConfig(windows=12),
        )
        text = render_congestion_timeline(result.telemetry, topo, threshold=0.9)
        assert "occupancy timeline: 12 windows" in text
        assert "torus link" in text  # labeled through describe_link
        assert "hot links >= 0.90" in text
        # Without a topology the rows fall back to raw link IDs.
        assert "link " in render_congestion_timeline(result.telemetry)

    def test_summary_rendering(self):
        topo = Torus3D((2, 2, 2))
        result = simulate_network(
            make_matrix(8, [(0, 1, 400 * 4096)]),
            topo,
            execution_time=1e-5,
            seed=11,
            telemetry=TelemetryConfig(windows=12),
        )
        hot = render_summary(congestion_summary(result.telemetry, topo, 0.9))
        assert "congestion regions" in hot
        sparse = simulate_network(
            make_matrix(8, [(0, 1, 4096)]),
            topo,
            execution_time=1.0,
            telemetry=TelemetryConfig(windows=12),
        )
        quiet = render_summary(congestion_summary(sparse.telemetry, topo, 0.9))
        assert "no congestion regions" in quiet


class TestSweepIntegration:
    def test_telemetry_axis_merges_summary_fields(self):
        spec = SweepSpec(
            apps=(("AMG", 8),),
            topologies=("torus3d",),
            telemetry=True,
            telemetry_windows=8,
            telemetry_threshold=0.5,
        )
        records = run_sweep(spec)
        assert len(records) == 1
        record = records[0]
        for key in (
            "makespan_inflation",
            "peak_link_busy_fraction",
            "peak_window_occupancy",
            "num_regions",
            "longest_region_s",
            "hot_windows",
        ):
            assert key in record, key
        assert record["threshold"] == 0.5
        # Records stay flat scalars (export/pickle-safe).
        assert all(
            isinstance(v, (str, int, float)) for v in record.values()
        )

    def test_telemetry_off_keeps_records_unchanged(self):
        spec = SweepSpec(apps=(("AMG", 8),), topologies=("torus3d",))
        record = run_sweep(spec)[0]
        assert "peak_window_occupancy" not in record
        assert "num_regions" not in record

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"telemetry_windows": 0},
            {"telemetry_threshold": 0.0},
            {"telemetry_threshold": 1.5},
            {"sim_volume_scale": 0.0},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            SweepSpec(apps=(("AMG", 8),), **kwargs)


class TestCacheHygiene:
    def test_telemetry_config_does_not_poison_route_cache(self):
        """The same traffic hits the cached incidence whether or not the run
        is instrumented: telemetry config never enters a cache key."""
        matrix = _spread_matrix(27, seed=8)
        topo = Torus3D((3, 3, 3))
        cache.clear(memory=True)
        simulate_network(matrix, topo, execution_time=1e-3)
        before = cache.stats()["incidence"]
        simulate_network(
            matrix,
            topo,
            execution_time=1e-3,
            telemetry=TelemetryConfig(windows=32),
        )
        after = cache.stats()["incidence"]
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1


class TestCli:
    def run(self, capsys, *argv):
        code = cli_main(list(argv))
        assert code == 0
        return capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_telemetry_command(self, capsys, tmp_path):
        out_path = tmp_path / "report.npz"
        out = self.run(
            capsys,
            "telemetry",
            "--app", "AMG", "--ranks", "8",
            "--topology", "torus3d",
            "--windows", "6",
            "--threshold", "0.5",
            "--out", str(out_path),
        )
        assert "occupancy timeline: 6 windows" in out
        assert load_report_npz(out_path).num_windows == 6

    def test_telemetry_compare(self, capsys):
        out = self.run(
            capsys,
            "telemetry",
            "--app", "AMG", "--ranks", "8",
            "--topology", "dragonfly",
            "--windows", "6",
            "--compare", "minimal,valiant",
        )
        assert "congestion by routing" in out
        assert "minimal" in out and "valiant" in out

    def test_sweep_telemetry_flag(self, capsys):
        out = self.run(
            capsys,
            "sweep",
            "--app", "AMG", "--ranks", "8",
            "--topologies", "torus3d",
            "--format", "json",
            "--telemetry",
        )
        records = json.loads(out)
        assert "peak_window_occupancy" in records[0]


# ---------------------------------------------------------------- boundaries


class TestWindowBoundaries:
    """Occupancy attribution at exact window edges (synthetic services).

    The collector splits each service's busy time across the windows it
    overlaps; these tests pin the edge conventions — a service beginning
    exactly on a boundary belongs wholly to the window it opens, straddling
    services split exactly, and the last window absorbs the rounding tail.
    """

    @staticmethod
    def _finalize(begins, *, service=1.0, makespan=4.0, windows=4):
        from types import SimpleNamespace

        begins = np.asarray(begins, dtype=np.float64)
        setup = SimpleNamespace(
            num_links=2,
            service=service,
            link_ids=np.array([5, 9], dtype=np.int64),
            pair_src=np.array([0, 1], dtype=np.int64),
            pair_dst=np.array([1, 0], dtype=np.int64),
            inject_pair=np.zeros(1, dtype=np.int64),
            inject_time=np.zeros(1, dtype=np.float64),
        )
        result = SimpleNamespace(makespan=makespan)
        collector = WindowedCollector(TelemetryConfig(windows=windows))
        collector.record_services(
            np.zeros(len(begins), dtype=np.int64),
            begins,
            np.zeros(len(begins), dtype=np.float64),
        )
        return collector.finalize(setup, result, np.array([makespan / 2]))

    def test_begin_exactly_on_boundary(self):
        r = self._finalize([1.0])
        assert r.serve_series[0].tolist() == [0, 1, 0, 0]
        assert r.occupancy[0].tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_service_ending_exactly_on_boundary_does_not_spill(self):
        r = self._finalize([0.0])
        assert r.occupancy[0].tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_straddling_service_splits_exactly(self):
        r = self._finalize([0.5])
        assert r.serve_series[0].tolist() == [1, 0, 0, 0]
        assert r.occupancy[0].tolist() == [0.5, 0.5, 0.0, 0.0]

    def test_near_boundary_split_conserves_total(self):
        r = self._finalize([0.9, 2.25])
        assert r.occupancy[0].tolist() == pytest.approx([0.1, 0.9, 0.75, 0.25])
        assert float(r.occupancy.sum()) == pytest.approx(2.0)

    def test_last_window_absorbs_tail(self):
        # ends at 4.5, past the 4.0 span: the tail stays in window 3
        r = self._finalize([3.5])
        assert r.occupancy[0].tolist() == pytest.approx([0.0, 0.0, 0.0, 1.0])

    def test_zero_span_collapses_to_window_zero(self):
        r = self._finalize([0.0, 0.0], makespan=0.0)
        assert r.window_dt == 0.0
        assert int(r.serve_series[0].sum()) == 2
        assert float(r.occupancy.sum()) == pytest.approx(2.0)

    def test_occupancy_invariant_holds_on_boundary_reports(self):
        from repro.validation import CheckContext, run_invariants

        for begins in ([1.0], [0.0], [0.5], [0.9, 2.25], [3.0]):
            report = self._finalize(begins)
            ctx = CheckContext(label="synthetic", telemetry=report)
            assert run_invariants(ctx) == []
