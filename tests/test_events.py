"""Unit tests for trace event records."""

import pytest

from repro.core.events import (
    CollectiveEvent,
    CollectiveOp,
    Direction,
    P2PEvent,
    ROOTED_OPS,
    VECTOR_OPS,
)


class TestP2PEvent:
    def test_bytes_accounting(self):
        ev = P2PEvent(caller=0, peer=1, count=100, dtype="MPI_DOUBLE", repeat=3)
        assert ev.bytes_per_call(8) == 800
        assert ev.total_bytes(8) == 2400

    def test_send_detection(self):
        send = P2PEvent(caller=0, peer=1, count=1, dtype="MPI_BYTE")
        recv = P2PEvent(
            caller=1, peer=0, count=1, dtype="MPI_BYTE",
            direction=Direction.RECV, func="MPI_Recv",
        )
        assert send.is_send and not recv.is_send

    def test_direction_function_mismatch_rejected(self):
        with pytest.raises(ValueError):
            P2PEvent(
                caller=0, peer=1, count=1, dtype="MPI_BYTE",
                direction=Direction.RECV, func="MPI_Send",
            )

    def test_isend_is_send(self):
        ev = P2PEvent(caller=0, peer=1, count=1, dtype="MPI_BYTE", func="MPI_Isend")
        assert ev.is_send

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            P2PEvent(caller=-1, peer=0, count=1, dtype="MPI_BYTE")
        with pytest.raises(ValueError):
            P2PEvent(caller=0, peer=1, count=-1, dtype="MPI_BYTE")
        with pytest.raises(ValueError):
            P2PEvent(caller=0, peer=1, count=1, dtype="MPI_BYTE", repeat=0)

    def test_expanded_repeats(self):
        ev = P2PEvent(caller=0, peer=1, count=5, dtype="MPI_BYTE", repeat=4)
        expanded = ev.expanded()
        assert len(expanded) == 4
        assert all(e.repeat == 1 and e.count == 5 for e in expanded)
        assert sum(e.total_bytes(1) for e in expanded) == ev.total_bytes(1)


class TestCollectiveEvent:
    def test_func_mirrors_op(self):
        ev = CollectiveEvent(caller=0, op=CollectiveOp.BCAST, count=10)
        assert ev.func == "MPI_Bcast"

    def test_rooted_and_vector_flags(self):
        assert CollectiveEvent(caller=0, op=CollectiveOp.GATHER, count=1).is_rooted
        assert not CollectiveEvent(caller=0, op=CollectiveOp.ALLREDUCE, count=1).is_rooted
        assert CollectiveEvent(caller=0, op=CollectiveOp.ALLTOALLV, count=1).is_vector
        assert not CollectiveEvent(caller=0, op=CollectiveOp.ALLTOALL, count=1).is_vector

    def test_barrier_must_carry_no_payload(self):
        CollectiveEvent(caller=0, op=CollectiveOp.BARRIER, count=0)
        with pytest.raises(ValueError):
            CollectiveEvent(caller=0, op=CollectiveOp.BARRIER, count=1)

    def test_bytes_per_call(self):
        ev = CollectiveEvent(caller=0, op=CollectiveOp.REDUCE, count=16)
        assert ev.bytes_per_call(4) == 64

    def test_expanded(self):
        ev = CollectiveEvent(caller=2, op=CollectiveOp.ALLGATHER, count=8, repeat=3)
        assert [e.repeat for e in ev.expanded()] == [1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectiveEvent(caller=-1, op=CollectiveOp.BCAST)
        with pytest.raises(ValueError):
            CollectiveEvent(caller=0, op=CollectiveOp.BCAST, root=-1)
        with pytest.raises(ValueError):
            CollectiveEvent(caller=0, op=CollectiveOp.BCAST, repeat=0)


class TestOpSets:
    def test_rooted_ops_have_roots(self):
        assert CollectiveOp.BCAST in ROOTED_OPS
        assert CollectiveOp.SCATTERV in ROOTED_OPS
        assert CollectiveOp.ALLREDUCE not in ROOTED_OPS

    def test_vector_ops(self):
        assert VECTOR_OPS == {
            CollectiveOp.GATHERV,
            CollectiveOp.SCATTERV,
            CollectiveOp.ALLGATHERV,
            CollectiveOp.ALLTOALLV,
        }
