"""Seed-for-seed equivalence: batched NumPy kernel vs reference heap loop.

The batched engine (`repro.sim.engine.run_batched`) claims *bit-identical*
results to the per-event reference loop for any seed — including exact
float-time ties, which congestion makes common.  These tests pin that claim
across topologies, load regimes, and a real generated workload, plus the
first-order invariance of ``dynamic_utilization`` under ``volume_scale``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from helpers import make_matrix

from repro.comm.matrix import matrix_from_trace
from repro.sim import simulate_network, simulate_network_reference
from repro.sim.common import prepare_simulation
from repro.sim.engine import run_batched
from repro.sim.reference import run_reference
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D


def assert_bit_identical(a, b):
    """Every SimulationResult field exactly equal (no tolerance).

    Array-valued fields (per-link serve counts / link IDs) compare via
    np.array_equal; the telemetry report field has its own equality helper
    and is covered by tests/test_telemetry.py.
    """
    for f in dataclasses.fields(a):
        if f.name == "telemetry":
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            assert np.array_equal(va, vb), f"{f.name} differs"
        else:
            assert va == vb, f"{f.name}: {va!r} != {vb!r}"


TOPOLOGIES = [
    pytest.param(Torus3D((3, 3, 3)), id="torus3d"),
    pytest.param(FatTree(8, 3), id="fattree"),
    pytest.param(Dragonfly(4, 2, 2), id="dragonfly"),
]

# execution_time controls event density: 1.0 is sparse (reference regime),
# the short windows are dense and heavily congested (batched regime, where
# time ties on the service lattice stress the sequence-order tie-break).
REGIMES = [
    pytest.param(1.0, id="sparse"),
    pytest.param(5e-4, id="dense"),
    pytest.param(5e-5, id="congested"),
]


def _spread_matrix(num_ranks: int, seed: int = 0):
    """Many crossing pairs with mixed volumes, deterministic."""
    rng = np.random.default_rng(seed)
    pairs = []
    for src in range(num_ranks):
        for dst in rng.choice(num_ranks, size=4, replace=False):
            if int(dst) != src:
                pairs.append((src, int(dst), int(rng.integers(1, 30)) * 4096))
    return make_matrix(num_ranks, pairs)


class TestBitEquivalence:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("execution_time", REGIMES)
    def test_engines_bit_identical(self, topology, execution_time):
        matrix = _spread_matrix(27, seed=1)
        setup = prepare_simulation(
            matrix, topology, execution_time=execution_time, seed=3
        )
        assert setup is not None
        assert_bit_identical(run_reference(setup), run_batched(setup))

    @pytest.mark.parametrize("seed", [0, 1, 2, 17])
    def test_seed_for_seed(self, seed):
        matrix = _spread_matrix(27, seed=seed)
        setup = prepare_simulation(
            matrix, Dragonfly(4, 2, 2), execution_time=2e-4, seed=seed
        )
        assert_bit_identical(run_reference(setup), run_batched(setup))

    def test_volume_scale_paths_identical(self):
        matrix = _spread_matrix(27, seed=2)
        for scale in (1.0, 4.0, 16.0):
            setup = prepare_simulation(
                matrix,
                FatTree(8, 3),
                execution_time=3e-4,
                volume_scale=scale,
                seed=5,
            )
            assert_bit_identical(run_reference(setup), run_batched(setup))

    def test_single_link_tie_storm(self):
        """All traffic through one link: maximum FIFO-tie pressure."""
        matrix = make_matrix(8, [(0, 1, 400 * 4096)])
        setup = prepare_simulation(
            matrix, Torus3D((2, 2, 2)), execution_time=1e-5, seed=11
        )
        assert_bit_identical(run_reference(setup), run_batched(setup))

    def test_real_workload(self, lulesh64_trace):
        matrix = matrix_from_trace(lulesh64_trace)
        setup = prepare_simulation(
            matrix,
            Torus3D((4, 4, 4)),
            execution_time=lulesh64_trace.meta.execution_time,
            volume_scale=64.0,
            seed=0,
        )
        assert_bit_identical(run_reference(setup), run_batched(setup))


class TestDispatch:
    def test_forced_engines_match_auto(self):
        matrix = _spread_matrix(27, seed=4)
        kw = dict(execution_time=4e-4, seed=2)
        auto = simulate_network(matrix, FatTree(8, 3), engine="auto", **kw)
        batched = simulate_network(matrix, FatTree(8, 3), engine="batched", **kw)
        reference = simulate_network(matrix, FatTree(8, 3), engine="reference", **kw)
        assert_bit_identical(auto, batched)
        assert_bit_identical(auto, reference)

    def test_reference_entrypoint_matches(self):
        matrix = _spread_matrix(27, seed=4)
        kw = dict(execution_time=4e-4, seed=2)
        a = simulate_network(matrix, Torus3D((3, 3, 3)), **kw)
        b = simulate_network_reference(matrix, Torus3D((3, 3, 3)), **kw)
        assert_bit_identical(a, b)

    def test_unknown_engine_rejected(self):
        matrix = make_matrix(8, [(0, 1, 4096)])
        with pytest.raises(ValueError, match="engine"):
            simulate_network(matrix, Torus3D((2, 2, 2)), engine="warp")


class TestDegenerateConvention:
    def test_empty_simulation_reports_nan_inflation(self):
        r = simulate_network(make_matrix(8, []), Torus3D((2, 2, 2)))
        assert r.packets_simulated == 0
        assert math.isnan(r.makespan_inflation)
        assert r.dynamic_utilization == 0.0

    def test_self_traffic_only_reports_nan_inflation(self):
        r = simulate_network(make_matrix(8, [(3, 3, 10_000)]), Torus3D((2, 2, 2)))
        assert r.packets_simulated == 0
        assert math.isnan(r.makespan_inflation)

    def test_populated_simulation_has_finite_inflation(self):
        r = simulate_network(make_matrix(8, [(0, 1, 40 * 4096)]), Torus3D((2, 2, 2)))
        assert r.packets_simulated > 0
        assert math.isfinite(r.makespan_inflation)
        assert r.makespan_inflation >= 1.0


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the dev env
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestVolumeScaleInvariance:
    """volume_scale is a fluid-limit sampling knob: utilization is invariant
    to first order (each pair keeps >= 1 packet, so tiny pairs round up)."""

    @settings(max_examples=15, deadline=None)
    @given(
        scale=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_dynamic_utilization_first_order_invariant(self, scale, seed):
        # Large per-pair volumes so integer division loses < 2% per pair.
        rng = np.random.default_rng(7)
        pairs = [
            (src, int(dst), int(rng.integers(200, 400)) * 4096)
            for src in range(27)
            for dst in rng.choice(27, size=2, replace=False)
            if int(dst) != src
        ]
        matrix = make_matrix(27, pairs)
        base = simulate_network(
            matrix, Torus3D((3, 3, 3)), execution_time=2e-3, seed=seed
        )
        scaled = simulate_network(
            matrix,
            Torus3D((3, 3, 3)),
            execution_time=2e-3,
            volume_scale=float(scale),
            seed=seed,
        )
        assert base.packets_simulated > scaled.packets_simulated
        assert scaled.dynamic_utilization == pytest.approx(
            base.dynamic_utilization, rel=0.15
        )
