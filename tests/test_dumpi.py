"""Tests for the repro-dumpi ASCII format: writer, parser, repository."""

import pytest

from repro.comm.stats import trace_stats
from repro.core.communicator import Communicator
from repro.core.datatypes import MPIDatatype
from repro.core.events import CollectiveEvent, CollectiveOp, Direction, P2PEvent
from repro.dumpi.parser import ParseError, load_trace, loads_trace
from repro.dumpi.repository import TraceKey, TraceRepository
from repro.dumpi.writer import dump_trace, dumps_trace

from helpers import make_trace


def roundtrip(trace):
    return loads_trace(dumps_trace(trace))


class TestRoundTrip:
    def test_metadata(self, mixed_trace):
        back = roundtrip(mixed_trace)
        assert back.meta == mixed_trace.meta

    def test_events_preserved(self, mixed_trace):
        back = roundtrip(mixed_trace)
        assert back.events == mixed_trace.events

    def test_recv_events(self):
        trace = make_trace(2)
        trace.add(
            P2PEvent(
                caller=1, peer=0, count=10, dtype="MPI_INT",
                direction=Direction.RECV, func="MPI_Irecv", tag=42,
            )
        )
        back = roundtrip(trace)
        assert back.events == trace.events

    def test_derived_datatype_size_preserved(self):
        trace = make_trace(2)
        trace.datatypes.commit(MPIDatatype("APP_ROW_T", 4096, derived=True))
        trace.add(P2PEvent(caller=0, peer=1, count=3, dtype="APP_ROW_T"))
        back = roundtrip(trace)
        assert back.datatypes.size_of("APP_ROW_T") == 4096
        assert back.p2p_bytes() == trace.p2p_bytes()

    def test_sub_communicator_preserved(self):
        trace = make_trace(6)
        assert trace.communicators is not None
        trace.communicators.add(Communicator("HALF", (0, 2, 4)))
        trace.add(
            CollectiveEvent(caller=2, op=CollectiveOp.ALLGATHER, count=5, comm="HALF")
        )
        back = roundtrip(trace)
        assert back.communicators is not None
        assert back.communicators.get("HALF").members == (0, 2, 4)
        assert not back.uses_only_global_communicators

    def test_timestamps_exact(self):
        trace = make_trace(2)
        trace.add(
            P2PEvent(
                caller=0, peer=1, count=1, dtype="MPI_BYTE",
                t_enter=0.12345678901234567, t_leave=0.2,
            )
        )
        back = roundtrip(trace)
        assert back.events[0].t_enter == trace.events[0].t_enter

    def test_stats_invariant_under_serialization(self, mixed_trace):
        assert trace_stats(roundtrip(mixed_trace)) == trace_stats(mixed_trace)

    def test_generated_trace_roundtrip(self):
        from repro.apps.registry import generate_trace

        trace = generate_trace("MiniFE", 18)
        back = roundtrip(trace)
        assert trace_stats(back) == trace_stats(trace)
        assert len(back) == len(trace)


class TestParserErrors:
    def test_bad_magic(self):
        with pytest.raises(ParseError, match="magic"):
            loads_trace("not a trace\n")

    def test_bad_version(self):
        with pytest.raises(ParseError, match="version"):
            loads_trace("%repro-dumpi 99\n%app x\n%ranks 2\n%time 1.0\n")

    def test_missing_header(self):
        with pytest.raises(ParseError, match="%ranks"):
            loads_trace("%repro-dumpi 1\n%app x\n%time 1.0\n")

    def test_unknown_tag(self):
        text = "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\nBOGUS MPI_Send\n"
        with pytest.raises(ParseError, match="unknown record tag"):
            loads_trace(text)

    def test_unknown_collective(self):
        text = (
            "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\n"
            "COLL MPI_Magic caller=0 count=1\n"
        )
        with pytest.raises(ParseError, match="unknown collective"):
            loads_trace(text)

    def test_missing_required_field(self):
        text = (
            "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\n"
            "P2P MPI_Send caller=0 count=1 dtype=MPI_BYTE\n"
        )
        with pytest.raises(ParseError, match="peer"):
            loads_trace(text)

    def test_malformed_kv(self):
        text = "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\nP2P MPI_Send nonsense\n"
        with pytest.raises(ParseError, match="key=value"):
            loads_trace(text)

    def test_error_carries_line_number(self):
        text = "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\nBOGUS x\n"
        with pytest.raises(ParseError) as err:
            loads_trace(text)
        assert err.value.lineno == 5

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\n"
            "# a comment\n\n"
            "P2P MPI_Send caller=0 peer=1 count=5 dtype=MPI_BYTE t=0.0,0.1\n"
        )
        trace = loads_trace(text)
        assert len(trace) == 1

    def test_defaults_for_optional_fields(self):
        text = (
            "%repro-dumpi 1\n%app x\n%ranks 2\n%time 1.0\n"
            "P2P MPI_Send caller=0 peer=1 count=5 dtype=MPI_BYTE\n"
        )
        ev = loads_trace(text).events[0]
        assert ev.tag == 0 and ev.repeat == 1 and ev.t_enter == 0.0


class TestFileIO:
    def test_dump_and_load(self, tmp_path, mixed_trace):
        path = dump_trace(mixed_trace, tmp_path / "sub" / "t.dumpi.txt")
        assert path.exists()
        back = load_trace(path)
        assert back.events == mixed_trace.events


class TestRepository:
    def test_key_filename_roundtrip(self):
        for key in (
            TraceKey("AMG", 216),
            TraceKey("Boxlib_CNS", 256, "b"),
        ):
            assert TraceKey.from_filename(key.filename) == key

    def test_bad_filename(self):
        with pytest.raises(ValueError):
            TraceKey.from_filename("whatever.txt")

    def test_store_load_cycle(self, tmp_path, mixed_trace):
        repo = TraceRepository(tmp_path)
        repo.store(mixed_trace)
        key = TraceKey.of(mixed_trace)
        assert key in repo
        assert repo.load(key).events == mixed_trace.events
        assert repo.keys() == [key]

    def test_load_missing(self, tmp_path):
        repo = TraceRepository(tmp_path)
        with pytest.raises(FileNotFoundError):
            repo.load(TraceKey("X", 4))

    def test_ensure_generates_and_caches(self, tmp_path):
        repo = TraceRepository(tmp_path)
        key = TraceKey("MiniFE", 18)
        assert key not in repo
        trace = repo.ensure("MiniFE", 18)
        assert key in repo
        again = repo.ensure("MiniFE", 18)  # now loaded from disk
        assert trace_stats(again) == trace_stats(trace)

    def test_inconsistent_file_detected(self, tmp_path, mixed_trace):
        repo = TraceRepository(tmp_path)
        path = repo.path_of(TraceKey("WRONG", 4))
        dump_trace(mixed_trace, path)  # file says app "test"
        with pytest.raises(ValueError, match="inconsistent"):
            repo.load(TraceKey("WRONG", 4))
