"""The columnar front-end is bit-identical to the legacy per-event path.

Every registered application is generated twice — ``columnar=True`` (native
EventBlock arrays) and ``columnar=False`` (the original per-event loop) — at
its two smallest calibrated scales, and every downstream artifact is compared
exactly: event streams, traffic matrices (both collective settings), the §5
MPI-level metrics, Table-1 statistics, and optimized mappings.  The
vectorized mapping kernels are additionally pinned against their reference
implementations on the same matrices.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.apps import app_names, get_app
from repro.apps.patterns import _biased_scattered_reference, biased_scattered_channels
from repro.collectives.translate import (
    TrafficClass,
    collective_volume,
    iter_send_batches,
    iter_send_groups,
)
from repro.comm.matrix import matrix_from_trace
from repro.comm.stats import trace_stats
from repro.mapping.base import Mapping
from repro.mapping.optimized import (
    _greedy_ordering_reference,
    _refine_mapping_reference,
    _symmetric_csr,
    _symmetric_weights,
    greedy_ordering,
    optimize_mapping,
    refine_mapping,
)
from repro.metrics.locality import rank_distance, rank_locality
from repro.metrics.peers import peers_per_rank
from repro.metrics.selectivity import per_rank_selectivity
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D


def _two_smallest_scales() -> list[tuple[str, int]]:
    configs = []
    for name in app_names():
        for ranks in get_app(name).scales()[:2]:
            configs.append((name, ranks))
    return configs


CONFIGS = _two_smallest_scales()
SMALLEST = [(name, get_app(name).scales()[0]) for name in app_names()]


@lru_cache(maxsize=None)
def _pair(name: str, ranks: int, emit_receives: bool = False):
    app = get_app(name)
    legacy = app.generate(ranks, emit_receives=emit_receives, columnar=False)
    columnar = app.generate(ranks, emit_receives=emit_receives, columnar=True)
    return legacy, columnar


def _assert_matrices_identical(a, b):
    assert a.num_ranks == b.num_ranks
    for col in ("src", "dst", "nbytes", "messages", "packets"):
        assert np.array_equal(getattr(a, col), getattr(b, col)), col


class TestGeneratorEquivalence:
    @pytest.mark.parametrize("name,ranks", CONFIGS)
    def test_event_streams_identical(self, name, ranks):
        legacy, columnar = _pair(name, ranks)
        assert columnar.has_native_blocks and not legacy.has_native_blocks
        assert columnar.meta == legacy.meta
        assert columnar.events == legacy.events

    @pytest.mark.parametrize("name", [n for n in app_names()][:4])
    def test_event_streams_identical_with_receives(self, name):
        ranks = get_app(name).scales()[0]
        legacy, columnar = _pair(name, ranks, emit_receives=True)
        assert columnar.events == legacy.events


class TestMatrixEquivalence:
    @pytest.mark.parametrize("name,ranks", CONFIGS)
    @pytest.mark.parametrize("include_collectives", [True, False])
    def test_matrices_bit_identical(self, name, ranks, include_collectives):
        legacy, columnar = _pair(name, ranks)
        a = matrix_from_trace(legacy, include_collectives=include_collectives)
        b = matrix_from_trace(columnar, include_collectives=include_collectives)
        _assert_matrices_identical(a, b)

    @pytest.mark.parametrize("name,ranks", SMALLEST)
    def test_batches_aggregate_like_groups(self, name, ranks):
        """iter_send_batches carries the same messages as iter_send_groups."""
        legacy, columnar = _pair(name, ranks)
        for traffic_class in TrafficClass:
            group_bytes = sum(
                c.group.total_bytes
                for c in iter_send_groups(legacy)
                if c.traffic_class is traffic_class
            )
            group_msgs = sum(
                c.group.num_messages
                for c in iter_send_groups(legacy)
                if c.traffic_class is traffic_class
            )
            batch_bytes = sum(
                b.total_bytes
                for b in iter_send_batches(columnar)
                if b.traffic_class is traffic_class
            )
            batch_msgs = sum(
                b.num_messages
                for b in iter_send_batches(columnar)
                if b.traffic_class is traffic_class
            )
            assert batch_bytes == group_bytes
            assert batch_msgs == group_msgs


class TestMetricEquivalence:
    @pytest.mark.parametrize("name,ranks", SMALLEST)
    def test_locality_selectivity_peers_identical(self, name, ranks):
        legacy, columnar = _pair(name, ranks)
        a = matrix_from_trace(legacy, include_collectives=False)
        b = matrix_from_trace(columnar, include_collectives=False)
        # equal_nan: all-collective apps (BigFFT) have empty p2p matrices,
        # whose locality metrics are NaN on both paths
        assert np.isclose(
            rank_locality(a), rank_locality(b), rtol=0, atol=0, equal_nan=True
        )
        assert np.isclose(
            rank_distance(a), rank_distance(b), rtol=0, atol=0, equal_nan=True
        )
        assert np.array_equal(peers_per_rank(a), peers_per_rank(b))
        assert per_rank_selectivity(a) == per_rank_selectivity(b)

    @pytest.mark.parametrize("name,ranks", SMALLEST)
    def test_trace_stats_identical(self, name, ranks):
        legacy, columnar = _pair(name, ranks)
        assert trace_stats(legacy) == trace_stats(columnar)
        assert collective_volume(legacy) == collective_volume(columnar)


class TestMappingEquivalence:
    @pytest.mark.parametrize("name,ranks", SMALLEST)
    def test_optimized_mapping_identical_across_storage(self, name, ranks):
        legacy, columnar = _pair(name, ranks)
        a = matrix_from_trace(legacy)
        b = matrix_from_trace(columnar)
        topo = Torus3D((16, 8, 8))
        for method in ("greedy", "bisection"):
            ma = optimize_mapping(a, topo, method=method, ranks_per_node=2, refine=True)
            mb = optimize_mapping(b, topo, method=method, ranks_per_node=2, refine=True)
            assert np.array_equal(ma.nodes, mb.nodes), method

    @pytest.mark.parametrize("name,ranks", SMALLEST)
    def test_vectorized_kernels_match_reference(self, name, ranks):
        _, columnar = _pair(name, ranks)
        m = matrix_from_trace(columnar)

        indptr, indices, weights = _symmetric_csr(m)
        adj = _symmetric_weights(m)
        for u in range(m.num_ranks):
            lo, hi = indptr[u], indptr[u + 1]
            assert (
                list(zip(indices[lo:hi].tolist(), weights[lo:hi].tolist()))
                == adj.get(u, [])
            )

        assert np.array_equal(greedy_ordering(m), _greedy_ordering_reference(m))

        topo = FatTree(radix=48, stages=2)
        base = Mapping.consecutive(m.num_ranks, topo.num_nodes, 1)
        fast = refine_mapping(m, topo, base, seed=0)
        slow = _refine_mapping_reference(m, topo, base, seed=0)
        assert np.array_equal(fast.nodes, slow.nodes)


class TestScatterPatternEquivalence:
    @pytest.mark.parametrize(
        "num_ranks,ppr,distance,max_offset",
        [
            (64, 6, "uniform", None),
            (64, 6, "loguniform", None),
            (216, 12, "quadratic", None),
            (216, 12, "loguniform", 8),
            (100, 3, "uniform", 2),  # tight window: duplicates dominate
        ],
    )
    def test_vectorized_sampler_matches_reference(
        self, num_ranks, ppr, distance, max_offset
    ):
        """Same channels AND the same post-call rng state as the reference."""
        max_off = (
            num_ranks - 1 if max_offset is None else min(max_offset, num_ranks - 1)
        )
        partner_w = np.full(min(ppr, num_ranks - 1), 1.0)

        rng_fast = np.random.default_rng(12345)
        fast = biased_scattered_channels(
            num_ranks, ppr, rng_fast, distance=distance, max_offset=max_offset
        )
        rng_ref = np.random.default_rng(12345)
        ref = _biased_scattered_reference(
            num_ranks, min(ppr, num_ranks - 1), rng_ref, distance, partner_w,
            1.0, max_off,
        )
        assert np.array_equal(fast.src, ref.src)
        assert np.array_equal(fast.dst, ref.dst)
        assert np.array_equal(fast.weight, ref.weight)
        assert rng_fast.bit_generator.state == rng_ref.bit_generator.state
