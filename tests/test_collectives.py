"""Tests for the flat collective-to-p2p expansion (paper §4.4 conventions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.collectives.patterns import SendGroup, even_split, expand_collective
from repro.collectives.translate import (
    TrafficClass,
    collective_volume,
    iter_send_groups,
)
from repro.core.communicator import Communicator
from repro.core.events import CollectiveEvent, CollectiveOp, P2PEvent

from helpers import make_trace

N = 8


def expand(op, caller, count=100, root=0, repeat=1, comm=None, elem=1):
    comm = comm or Communicator.world(N)
    ev = CollectiveEvent(caller=caller, op=op, count=count, root=root, repeat=repeat)
    return expand_collective(ev, comm, elem)


def total_messages(groups):
    return sum(g.num_messages for g in groups)


def union_bytes(groups):
    return sum(g.total_bytes for g in groups)


def all_pairs(groups):
    pairs = []
    for g in groups:
        for dst in g.dsts:
            pairs.append((g.src, int(dst)))
    return pairs


class TestEvenSplit:
    def test_conserves_total(self):
        assert even_split(10, 3).sum() == 10

    def test_as_even_as_possible(self):
        shares = even_split(10, 3)
        assert shares.max() - shares.min() <= 1

    def test_zero_total(self):
        assert even_split(0, 4).tolist() == [0, 0, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            even_split(5, 0)
        with pytest.raises(ValueError):
            even_split(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 1000))
    def test_property_conservation(self, total, parts):
        shares = even_split(total, parts)
        assert shares.sum() == total
        assert shares.max() - shares.min() <= 1


class TestBarrier:
    def test_no_messages(self):
        assert expand(CollectiveOp.BARRIER, caller=3, count=0) == []


class TestBcast:
    def test_root_sends_to_all_members_including_self(self):
        groups = expand(CollectiveOp.BCAST, caller=0, root=0)
        assert total_messages(groups) == N  # paper convention: self included
        assert (0, 0) in all_pairs(groups)

    def test_non_root_sends_nothing(self):
        assert expand(CollectiveOp.BCAST, caller=3, root=0) == []


class TestRootedGatherFamily:
    @pytest.mark.parametrize(
        "op", [CollectiveOp.REDUCE, CollectiveOp.GATHER, CollectiveOp.GATHERV]
    )
    def test_every_caller_sends_to_root(self, op):
        for caller in range(N):
            groups = expand(op, caller=caller, root=2)
            assert all_pairs(groups) == [(caller, 2)]

    def test_union_volume(self):
        # all N callers (root included) send `count` bytes to the root
        total = sum(
            union_bytes(expand(CollectiveOp.GATHER, caller=c, count=50, root=1))
            for c in range(N)
        )
        assert total == N * 50


class TestAllreduce:
    def test_reduce_plus_bcast_through_rank0(self):
        total = sum(
            union_bytes(expand(CollectiveOp.ALLREDUCE, caller=c, count=10))
            for c in range(N)
        )
        assert total == 2 * N * 10  # N to root, N from root

    def test_rank0_both_phases(self):
        pairs = all_pairs(expand(CollectiveOp.ALLREDUCE, caller=0, count=1))
        assert (0, 0) in pairs
        assert len(pairs) == 1 + N


class TestScatterFamily:
    def test_scatter_per_destination_count(self):
        groups = expand(CollectiveOp.SCATTER, caller=0, count=10, root=0)
        assert total_messages(groups) == N
        assert union_bytes(groups) == N * 10

    def test_scatterv_even_split_conserves_total(self):
        groups = expand(CollectiveOp.SCATTERV, caller=0, count=101, root=0)
        assert union_bytes(groups) == 101

    def test_non_root_silent(self):
        assert expand(CollectiveOp.SCATTER, caller=1, root=0) == []


class TestAllToAllFamily:
    def test_alltoall_full_fanout(self):
        groups = expand(CollectiveOp.ALLTOALL, caller=2, count=7)
        assert total_messages(groups) == N
        assert union_bytes(groups) == N * 7

    def test_alltoallv_split_conserves_callers_total(self):
        groups = expand(CollectiveOp.ALLTOALLV, caller=2, count=999)
        assert union_bytes(groups) == 999
        assert total_messages(groups) == N

    def test_allgather_fanout(self):
        groups = expand(CollectiveOp.ALLGATHER, caller=5, count=3)
        assert total_messages(groups) == N
        assert union_bytes(groups) == N * 3


class TestReduceScatter:
    def test_slices_conserve_input(self):
        groups = expand(CollectiveOp.REDUCE_SCATTER, caller=1, count=100)
        assert union_bytes(groups) == 100


class TestScan:
    def test_chain_structure(self):
        assert all_pairs(expand(CollectiveOp.SCAN, caller=3, count=5)) == [(3, 4)]
        assert expand(CollectiveOp.SCAN, caller=N - 1, count=5) == []

    def test_exscan_same_shape(self):
        assert all_pairs(expand(CollectiveOp.EXSCAN, caller=0, count=5)) == [(0, 1)]


class TestSubCommunicator:
    def test_expansion_uses_global_ranks(self):
        sub = Communicator("SUB", (1, 4, 6))
        ev = CollectiveEvent(caller=4, op=CollectiveOp.ALLGATHER, count=2, comm="SUB")
        groups = expand_collective(ev, sub, 1)
        dsts = sorted(int(d) for g in groups for d in g.dsts)
        assert dsts == [1, 4, 6]

    def test_single_member_comm_is_silent(self):
        solo = Communicator("SOLO", (3,))
        ev = CollectiveEvent(caller=3, op=CollectiveOp.ALLREDUCE, count=9, comm="SOLO")
        assert expand_collective(ev, solo, 1) == []

    def test_element_size_scales_bytes(self):
        groups = expand(CollectiveOp.ALLGATHER, caller=0, count=4, elem=8)
        assert union_bytes(groups) == N * 32


class TestTraceTranslation:
    def test_classification(self, mixed_trace):
        classes = {c.traffic_class for c in iter_send_groups(mixed_trace)}
        assert classes == {TrafficClass.P2P, TrafficClass.COLLECTIVE}

    def test_p2p_only_filter(self, mixed_trace):
        for c in iter_send_groups(mixed_trace, include_collectives=False):
            assert c.traffic_class is TrafficClass.P2P

    def test_collective_volume_allreduce(self):
        trace = make_trace(4)
        for r in range(4):
            trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLREDUCE, count=10))
        assert collective_volume(trace) == 2 * 4 * 10

    def test_recv_records_inject_nothing(self):
        from repro.core.events import Direction

        trace = make_trace(2)
        trace.add(
            P2PEvent(
                caller=0, peer=1, count=100, dtype="MPI_BYTE",
                direction=Direction.RECV, func="MPI_Recv",
            )
        )
        assert list(iter_send_groups(trace)) == []

    def test_sendgroup_validation(self):
        with pytest.raises(ValueError):
            SendGroup(0, np.array([1, 2]), np.array([10]), calls=1)
        with pytest.raises(ValueError):
            SendGroup(0, np.array([1]), np.array([10]), calls=0)
