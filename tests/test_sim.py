"""Tests for the dynamic packet-level simulator."""

import numpy as np
import pytest

from repro.mapping.base import Mapping
from repro.sim.engine import simulate_network
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D

from helpers import make_matrix


def sim(matrix, topo, **kw):
    kw.setdefault("execution_time", 1.0)
    kw.setdefault("bandwidth", 4096.0)  # 1 packet/s: easy arithmetic
    return simulate_network(matrix, topo, **kw)


class TestBasics:
    def test_empty_matrix(self):
        r = sim(make_matrix(8, []), Torus3D((2, 2, 2)))
        assert r.packets_simulated == 0
        assert r.dynamic_utilization == 0.0

    def test_single_packet_walks_its_route(self):
        m = make_matrix(8, [(0, 7, 100)])  # 1 packet, 3 hops
        r = sim(m, Torus3D((2, 2, 2)))
        assert r.packets_simulated == 1
        assert r.total_hops == 3
        assert r.used_links == 3
        assert r.mean_queue_delay == 0.0
        assert r.congested_packet_share == 0.0

    def test_self_traffic_not_simulated(self):
        m = make_matrix(8, [(3, 3, 10_000)])
        r = sim(m, Torus3D((2, 2, 2)))
        assert r.packets_simulated == 0

    def test_deterministic(self):
        m = make_matrix(8, [(0, 1, 50_000), (2, 3, 50_000)])
        a = sim(m, Torus3D((2, 2, 2)), seed=5)
        b = sim(m, Torus3D((2, 2, 2)), seed=5)
        assert a == b

    def test_seed_changes_injection(self):
        m = make_matrix(8, [(0, 1, 500_000)])
        a = sim(m, Torus3D((2, 2, 2)), seed=1)
        b = sim(m, Torus3D((2, 2, 2)), seed=2)
        assert a.makespan != b.makespan

    def test_validation(self):
        m = make_matrix(8, [(0, 1, 1)])
        with pytest.raises(ValueError):
            sim(m, Torus3D((2, 2, 2)), execution_time=0.0)
        with pytest.raises(ValueError):
            sim(m, Torus3D((2, 2, 2)), volume_scale=0.5)
        with pytest.raises(ValueError):
            simulate_network(
                make_matrix(8, [(0, 1, 10 * 4096)]),
                Torus3D((2, 2, 2)),
                max_packets=5,
            )


class TestQueueing:
    def test_oversubscribed_link_congests(self):
        """Two senders share one victim link at full offered load."""
        # nodes 0 and 2 both send to 1 on a chain-ish torus; with bandwidth
        # of 2 packets/s and 10 packets each in 1 s the shared ejection link
        # saturates.
        m = make_matrix(8, [(0, 1, 10 * 4096), (5, 1, 10 * 4096)])
        r = sim(m, Torus3D((2, 2, 2)), bandwidth=2 * 4096.0)
        assert r.congested_packet_share > 0.1
        assert r.mean_queue_delay > 0.0

    def test_light_load_no_congestion(self):
        m = make_matrix(8, [(0, 1, 50 * 4096)])
        r = sim(m, Torus3D((2, 2, 2)), bandwidth=1e9)
        assert r.congested_packet_share == 0.0
        assert r.makespan_inflation == pytest.approx(1.0, abs=0.05)

    def test_makespan_inflates_when_offered_exceeds_capacity(self):
        # 100 packets through one link in 1 s at 10 packets/s: drain ~10 s
        m = make_matrix(8, [(0, 1, 100 * 4096)])
        r = sim(m, Torus3D((2, 2, 2)), bandwidth=10 * 4096.0)
        assert r.makespan == pytest.approx(10.0, rel=0.15)
        assert r.makespan_inflation > 5.0

    def test_busy_time_equals_hops_times_service(self):
        m = make_matrix(8, [(0, 7, 3 * 4096)])
        r = sim(m, Torus3D((2, 2, 2)), bandwidth=4096.0)
        # 3 packets x 3 hops x 1 s service
        assert r.link_busy_time_total == pytest.approx(9.0)

    def test_fifo_ordering_on_shared_link(self):
        """Back-to-back packets on one link serialize exactly."""
        m = make_matrix(48, [(0, 1, 5 * 4096)])
        r = sim(m, FatTree(48, 1), bandwidth=4096.0, execution_time=1e-9)
        # all 5 packets injected ~simultaneously; 2 links each serving 5
        # sequential packets -> makespan ~ 5 + 5 service times pipelined
        assert r.makespan == pytest.approx(6.0, rel=0.05)


class TestScaling:
    def test_volume_scale_preserves_utilization(self):
        m = make_matrix(8, [(0, 1, 400 * 4096)])
        full = sim(m, Torus3D((2, 2, 2)), bandwidth=1000 * 4096.0)
        scaled = sim(
            m, Torus3D((2, 2, 2)), bandwidth=1000 * 4096.0, volume_scale=4.0
        )
        assert scaled.packets_simulated == full.packets_simulated // 4
        assert scaled.dynamic_utilization == pytest.approx(
            full.dynamic_utilization, rel=0.1
        )


class TestAgainstStaticModel:
    def test_hops_match_static(self):
        """Without contention the simulator walks exactly the static routes."""
        from repro.model.engine import analyze_network

        m = make_matrix(8, [(0, 7, 2 * 4096), (1, 2, 4096)])
        static = analyze_network(m, Torus3D((2, 2, 2)))
        dyn = sim(m, Torus3D((2, 2, 2)), bandwidth=1e9)
        assert dyn.total_hops == static.packet_hops
        assert dyn.used_links == static.used_links

    def test_low_static_utilization_implies_no_queueing(self, lulesh64_trace):
        """The paper's §8 claim: at <1% static utilization, congestion is
        improbable — the dynamic model confirms zero queueing."""
        from repro.comm.matrix import matrix_from_trace

        matrix = matrix_from_trace(lulesh64_trace)
        r = simulate_network(
            matrix,
            Torus3D((4, 4, 4)),
            execution_time=lulesh64_trace.meta.execution_time,
            volume_scale=8.0,
        )
        assert r.congested_packet_share < 0.01
        assert r.makespan_inflation == pytest.approx(1.0, abs=0.01)
