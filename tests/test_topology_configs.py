"""Tests for the Table-2 configuration selection."""

import pytest

from repro.topology.configs import (
    TABLE2,
    TABLE2_SIZES,
    build_all,
    config_for,
    dragonfly_params_for,
    fat_tree_stages_for,
    torus_dims_for,
)

# the paper's Table 2, verbatim
PAPER_TABLE2 = {
    8: ((2, 2, 2), 1, (4, 2, 2)),
    9: ((3, 2, 2), 1, (4, 2, 2)),
    10: ((3, 2, 2), 1, (4, 2, 2)),
    18: ((3, 3, 2), 1, (4, 2, 2)),
    27: ((3, 3, 3), 1, (4, 2, 2)),
    64: ((4, 4, 4), 2, (4, 2, 2)),
    100: ((5, 5, 4), 2, (6, 3, 3)),
    125: ((5, 5, 5), 2, (6, 3, 3)),
    144: ((6, 6, 4), 2, (6, 3, 3)),
    168: ((7, 6, 4), 2, (6, 3, 3)),
    216: ((6, 6, 6), 2, (6, 3, 3)),
    256: ((8, 8, 4), 2, (6, 3, 3)),
    512: ((8, 8, 8), 2, (8, 4, 4)),
    1000: ((10, 10, 10), 3, (8, 4, 4)),
    1024: ((16, 8, 8), 3, (8, 4, 4)),
    1152: ((12, 12, 8), 3, (10, 5, 5)),
    1728: ((12, 12, 12), 3, (10, 5, 5)),
}


class TestTable2Verbatim:
    @pytest.mark.parametrize("size", sorted(PAPER_TABLE2))
    def test_row(self, size):
        torus, stages, ahp = PAPER_TABLE2[size]
        cfg = TABLE2[size]
        assert cfg.torus_dims == torus
        assert cfg.fat_tree_stages == stages
        assert cfg.dragonfly_ahp == ahp

    def test_sizes(self):
        assert TABLE2_SIZES == tuple(sorted(PAPER_TABLE2))

    @pytest.mark.parametrize(
        "size,nodes", [(8, 8), (100, 100), (1024, 1024), (1728, 1728)]
    )
    def test_torus_node_counts(self, size, nodes):
        assert TABLE2[size].torus_nodes >= size

    def test_paper_node_columns(self):
        cfg = TABLE2[1152]
        assert cfg.torus_nodes == 1152
        assert cfg.fat_tree_nodes == 13824
        assert cfg.dragonfly_nodes == 2550


class TestSelectors:
    def test_torus_fits(self):
        for n in (5, 50, 300, 2000):
            dims = torus_dims_for(n)
            assert dims[0] * dims[1] * dims[2] >= n
            assert dims[0] >= dims[1] >= dims[2]

    def test_fat_tree_stage_thresholds(self):
        assert fat_tree_stages_for(48) == 1
        assert fat_tree_stages_for(49) == 2
        assert fat_tree_stages_for(576) == 2
        assert fat_tree_stages_for(577) == 3
        with pytest.raises(ValueError):
            fat_tree_stages_for(20000)

    def test_dragonfly_smallest_standard(self):
        assert dragonfly_params_for(72) == (4, 2, 2)
        assert dragonfly_params_for(73) == (6, 3, 3)
        assert dragonfly_params_for(2550) == (10, 5, 5)

    def test_config_for_off_table_size(self):
        cfg = config_for(40)
        assert cfg.torus_nodes >= 40
        assert cfg.fat_tree_nodes >= 40
        assert cfg.dragonfly_nodes >= 40

    def test_validation(self):
        with pytest.raises(ValueError):
            torus_dims_for(0)
        with pytest.raises(ValueError):
            fat_tree_stages_for(-1)
        with pytest.raises(ValueError):
            dragonfly_params_for(0)


class TestBuildAll:
    def test_builds_three_topologies(self):
        topos = build_all(64)
        assert set(topos) == {"torus3d", "fattree", "dragonfly"}
        assert topos["torus3d"].num_nodes == 64
        assert topos["fattree"].num_nodes == 576
        assert topos["dragonfly"].num_nodes == 72
        for t in topos.values():
            assert t.num_nodes >= 64
