"""Tests for the multi-tenant workload composer and attribution pipeline.

Covers the :mod:`repro.tenancy` subsystem end to end — allocation policy
properties, solo bit-identity of degenerate compositions, per-job byte
conservation through the merge, congestion attribution on an adversarial
hot-spot scenario, the ``interference_aware`` routing policy — plus the
satellite regressions that ride along: the unified duplicate-cell sweep
warning and NaN-safe telemetry rendering.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.apps.noise import HotspotNoise, UniformNoise
from repro.apps.registry import NOISE_APPS, get_app
from repro.comm.matrix import matrix_from_trace
from repro.routing import (
    ROUTINGS,
    InterferenceAwareRouting,
    get_policy,
    victim_link_loads,
)
from repro.sim.common import prepare_simulation
from repro.sim.engine import simulate_network
from repro.telemetry import TelemetryConfig
from repro.telemetry.collector import TelemetryReport, reports_equal
from repro.tenancy import (
    ALLOCATIONS,
    TenantSpec,
    allocate_ranks,
    compose_workload,
    interference_report,
    job_of_rank_table,
    per_job_link_loads,
    render_interference_report,
    victim_peak_link_load,
)
from repro.topology.configs import config_for
from repro.topology.dragonfly import Dragonfly
from repro.validation import CheckContext, run_invariants
from repro.validation.invariants import traces_identical
from repro.validation.suite import composed_context


class TestAllocationPolicies:
    """Every policy must produce disjoint, complete, sorted rank sets."""

    @pytest.mark.parametrize("policy", ALLOCATIONS)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("sizes", [[5, 3, 8], [1, 1], [16], [2, 2, 2, 2]])
    def test_partition_properties(self, policy, seed, sizes):
        allocations = allocate_ranks(sizes, policy, seed)
        assert len(allocations) == len(sizes)
        for ranks, size in zip(allocations, sizes):
            assert len(ranks) == size
            assert ranks.dtype == np.int64
            assert np.array_equal(np.sort(ranks), ranks)
        merged = np.concatenate(allocations)
        total = sum(sizes)
        assert len(np.unique(merged)) == total  # pairwise disjoint
        assert np.array_equal(np.sort(merged), np.arange(total))  # complete

    @pytest.mark.parametrize("policy", ALLOCATIONS)
    def test_single_job_is_identity(self, policy):
        (ranks,) = allocate_ranks([12], policy, seed=3)
        assert np.array_equal(ranks, np.arange(12))

    def test_job_of_rank_table_inverts(self):
        allocations = allocate_ranks([5, 3, 8], "round_robin")
        table = job_of_rank_table(allocations, 16)
        for job_id, ranks in enumerate(allocations):
            assert (table[ranks] == job_id).all()

    def test_random_is_seeded(self):
        a = allocate_ranks([7, 9], "random", seed=1)
        b = allocate_ranks([7, 9], "random", seed=1)
        c = allocate_ranks([7, 9], "random", seed=2)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert any(not np.array_equal(x, y) for x, y in zip(a, c))

    def test_errors(self):
        with pytest.raises(ValueError):
            allocate_ranks([4, 4], "best_fit")
        with pytest.raises(ValueError):
            allocate_ranks([])
        with pytest.raises(ValueError):
            allocate_ranks([4, 0])


class TestNoiseApps:
    def test_registry_resolution(self):
        assert set(NOISE_APPS) == {"UniformNoise", "HotspotNoise"}
        for name in NOISE_APPS:
            assert get_app(name).name == name

    @pytest.mark.parametrize("app", [UniformNoise(), HotspotNoise()])
    def test_generates_at_any_scale(self, app):
        for ranks in (8, 13):
            trace = app.generate(ranks)
            assert trace.meta.num_ranks == ranks
            assert matrix_from_trace(trace).total_bytes > 0

    def test_synthesized_calibration(self):
        app = UniformNoise(volume_mb=8.0, time_s=0.5)
        point = app.calibration_for(10)
        assert point.ranks == 10
        assert point.time_s == 0.5
        with pytest.raises(KeyError):
            app.calibration_for(10, variant="large")

    def test_no_study_configurations(self):
        assert UniformNoise().configurations() == []
        assert HotspotNoise().scales() == []


class TestComposeWorkload:
    def test_single_job_zero_noise_is_solo_trace(self):
        solo = get_app("LULESH").generate(64)
        workload = compose_workload([TenantSpec("LULESH", 64)])
        assert workload.num_jobs == 1
        assert traces_identical(workload.trace, solo)
        assert traces_identical(workload.solo_trace(0), solo)

    def test_single_job_simulation_bit_identical(self):
        """Records and telemetry of a degenerate composition match solo."""
        solo = get_app("LULESH").generate(64)
        workload = compose_workload(
            [TenantSpec("LULESH", 64)], allocation="round_robin"
        )
        topo = config_for(64).build_torus()
        matrix_solo = matrix_from_trace(solo)
        matrix_comp = matrix_from_trace(workload.trace)
        for engine in ("batched", "reference"):
            kwargs = dict(
                execution_time=solo.meta.execution_time,
                volume_scale=64.0,
                telemetry=TelemetryConfig(windows=8),
                engine=engine,
            )
            a = simulate_network(matrix_solo, topo, **kwargs)
            b = simulate_network(
                matrix_comp, topo, job_of_rank=workload.job_of_rank, **kwargs
            )
            assert a == b
            assert np.array_equal(a.link_serve_counts, b.link_serve_counts)
            assert reports_equal(a.telemetry, b.telemetry)
            # The composed run additionally reports the per-job makespan.
            assert b.job_makespans is not None
            assert float(b.job_makespans[0]) == a.makespan

    def test_two_jobs_conserve_bytes(self):
        workload = compose_workload(
            [TenantSpec("LULESH", 64)],
            noise=[TenantSpec("UniformNoise", 16)],
            allocation="round_robin",
        )
        assert workload.num_ranks == 80
        assert workload.labels == ("LULESH", "UniformNoise")
        assert workload.app_job_ids() == [0]
        assert workload.noise_job_ids() == [1]
        matrix = matrix_from_trace(workload.trace)
        total = 0
        for job in workload.jobs:
            sub = workload.job_matrix(matrix, job.job_id)
            solo = matrix_from_trace(workload.solo_trace(job.job_id))
            for column in ("nbytes", "messages", "packets"):
                assert getattr(sub, column).sum() == getattr(solo, column).sum()
            total += sub.total_bytes
        assert total == matrix.total_bytes

    def test_communicators_prefixed_per_job(self):
        workload = compose_workload(
            [TenantSpec("LULESH", 64), TenantSpec("CMC_2D", 64)]
        )
        names = workload.trace.communicators.names()
        assert any(name.startswith("LULESH:") for name in names)
        assert any(name.startswith("CMC_2D:") for name in names)

    def test_duplicate_app_labels_disambiguated(self):
        workload = compose_workload(
            [TenantSpec("UniformNoise", 8, seed=0), TenantSpec("UniformNoise", 8, seed=1)]
        )
        assert workload.labels == ("UniformNoise#0", "UniformNoise#1")

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            compose_workload([])


class TestPerJobObservables:
    @pytest.fixture(scope="class")
    def scenario(self):
        topo = Dragonfly(4, 2, 2)
        workload = compose_workload(
            [TenantSpec(UniformNoise(fanout=4, volume_mb=32.0), 36)],
            noise=[TenantSpec(HotspotNoise(hot_ranks=2, src_ranks=16, volume_mb=32768.0), 36)],
            allocation="round_robin",
        )
        matrix = matrix_from_trace(workload.trace)
        setup = prepare_simulation(
            matrix,
            topo,
            execution_time=1.0,
            volume_scale=128.0,
            job_of_rank=workload.job_of_rank,
        )
        return workload, topo, matrix, setup

    def test_per_job_loads_partition_serve_counts(self, scenario):
        _, _, _, setup = scenario
        loads = per_job_link_loads(setup)
        assert loads.shape == (2, setup.num_links)
        assert np.array_equal(
            loads.sum(axis=0), setup.serve_counts.astype(np.float64)
        )

    def test_requires_job_identity(self, scenario):
        _, topo, matrix, _ = scenario
        bare = prepare_simulation(
            matrix, topo, execution_time=1.0, volume_scale=128.0
        )
        with pytest.raises(ValueError, match="job identity"):
            per_job_link_loads(bare)

    def test_job_makespans_cover_composite(self, scenario):
        workload, topo, matrix, _ = scenario
        result = simulate_network(
            matrix,
            topo,
            execution_time=1.0,
            volume_scale=128.0,
            job_of_rank=workload.job_of_rank,
        )
        assert result.job_makespans.shape == (2,)
        assert np.isfinite(result.job_makespans).all()
        assert float(result.job_makespans.max()) == result.makespan


class TestAdversarialAttribution:
    """Satellite 4: hot-spot aggressor dominates the blame, victim slows."""

    @pytest.fixture(scope="class")
    def dragonfly_report(self):
        workload = compose_workload(
            [TenantSpec(UniformNoise(fanout=4, volume_mb=32.0), 36)],
            noise=[TenantSpec(HotspotNoise(hot_ranks=2, src_ranks=16, volume_mb=32768.0), 36)],
            allocation="round_robin",
        )
        return interference_report(
            workload,
            Dragonfly(4, 2, 2),
            volume_scale=128.0,
            telemetry=TelemetryConfig(windows=24),
            threshold=0.6,
        )

    def test_aggressor_owns_the_hot_region(self, dragonfly_report):
        report = dragonfly_report
        assert len(report.regions) >= 1
        aggressor = report.jobs[1]
        assert aggressor.is_noise
        for blame in report.regions:
            assert float(blame.share[1]) > 0.9
            assert 1 in blame.participants
        assert aggressor.blame_share > 0.9
        assert report.jobs[0].blame_share < 0.1

    def test_render_mentions_every_job(self, dragonfly_report):
        text = render_interference_report(dragonfly_report)
        assert "UniformNoise" in text and "HotspotNoise" in text
        assert "noise" in text

    def test_victim_slowdown_under_adjacent_hotspot(self):
        """Converging aggressor trees on a torus genuinely slow the victim."""
        workload = compose_workload(
            [TenantSpec(HotspotNoise(hot_ranks=1, src_ranks=8, volume_mb=512.0), 32)],
            noise=[TenantSpec(HotspotNoise(hot_ranks=1, src_ranks=16, volume_mb=32768.0), 32)],
            allocation="round_robin",
        )
        report = interference_report(
            workload,
            config_for(64).build_torus(),
            volume_scale=64.0,
            telemetry=TelemetryConfig(windows=24),
            threshold=0.5,
        )
        victim, aggressor = report.jobs
        assert victim.slowdown > 1.2, (
            f"victim slowdown {victim.slowdown:.3f}: expected the shared "
            f"converging links to delay the victim's deliveries"
        )
        assert aggressor.slowdown < victim.slowdown
        assert aggressor.blamed_bytes > victim.blamed_bytes


class TestInterferenceAwareRouting:
    def test_registered(self):
        assert "interference_aware" in ROUTINGS
        policy = get_policy("interference_aware")
        assert isinstance(policy, InterferenceAwareRouting)
        assert policy.victim_loads is None

    def test_cache_token_embeds_loads(self):
        bare = InterferenceAwareRouting()
        primed = InterferenceAwareRouting(
            victim_loads=np.ones(4, dtype=np.float64)
        )
        other = InterferenceAwareRouting(
            victim_loads=np.full(4, 2.0, dtype=np.float64)
        )
        tokens = {bare.cache_token(), primed.cache_token(), other.cache_token()}
        assert len(tokens) == 3

    def test_rejects_bad_loads(self):
        with pytest.raises(ValueError):
            InterferenceAwareRouting(victim_loads=np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            InterferenceAwareRouting(victim_loads=np.ones((2, 2)))

    def test_reduces_victim_exposure_on_dragonfly(self):
        """The bench gate, at bench scale: primed routing steers the victim
        away from the aggressor's flood (structural loads, deterministic)."""
        topo = Dragonfly(8, 4, 4)
        workload = compose_workload(
            [TenantSpec("LULESH", 512)],
            noise=[TenantSpec(
                HotspotNoise(hot_ranks=16, src_ranks=16, volume_mb=16384.0),
                topo.num_nodes - 512,
            )],
            allocation="round_robin",
        )
        matrix = matrix_from_trace(workload.trace)
        common = dict(
            execution_time=workload.trace.meta.execution_time,
            volume_scale=64.0,
            max_packets=5_000_000,
            job_of_rank=workload.job_of_rank,
        )
        base = prepare_simulation(matrix, topo, routing="minimal", **common)
        baseline = victim_peak_link_load(base, 0)
        prior = victim_link_loads(
            workload.job_matrix(matrix, 0), topo, volume_scale=64.0
        )
        aware = prepare_simulation(
            matrix,
            topo,
            routing=InterferenceAwareRouting(victim_loads=prior),
            **common,
        )
        assert baseline / victim_peak_link_load(aware, 0) >= 2.0


class TestComposedInvariant:
    """Satellite 5: the composed-byte-conservation invariant."""

    def test_clean_composed_context_passes(self):
        ctx = composed_context(sim=False)
        assert "composed" in ctx.available
        assert run_invariants(ctx, ["composed-byte-conservation"]) == []

    def test_detects_corrupted_rank_table(self):
        workload = compose_workload(
            [TenantSpec("UniformNoise", 8), TenantSpec("UniformNoise", 8, seed=1)]
        )
        workload.job_of_rank[workload.jobs[0].ranks[0]] = 1
        ctx = CheckContext(label="corrupt", composed=workload)
        violations = run_invariants(ctx, ["composed-byte-conservation"])
        assert violations
        assert any("job_of_rank" in v.message for v in violations)

    def test_detects_lost_bytes(self):
        workload = compose_workload(
            [TenantSpec("UniformNoise", 8), TenantSpec("UniformNoise", 8, seed=1)]
        )
        # Swap in a different solo trace: the composite no longer carries
        # exactly this job's bytes, which the invariant must notice.
        workload._solo_cache[0] = UniformNoise(volume_mb=999.0).generate(8)
        ctx = CheckContext(label="corrupt", composed=workload)
        violations = run_invariants(ctx, ["composed-byte-conservation"])
        assert any("nbytes" in v.message for v in violations)


class TestSweepWarningUnified:
    """Satellite 1: duplicate-cell collapse warns on every consumer path."""

    def _dup_spec(self):
        from repro.analysis.sweep import SweepSpec

        return SweepSpec(
            apps=(("LULESH", 64), ("LULESH", 64)),
            topologies=("torus3d",),
            mappings=("consecutive",),
            routings=("minimal",),
            payloads=(4096,),
        )

    def test_unique_points_warns(self, caplog):
        from repro.analysis.sweep import unique_points

        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            points, collapsed = unique_points(self._dup_spec())
        assert collapsed == 1
        assert len(points) == 1
        assert any("collapsed 1 duplicate" in r.message for r in caplog.records)

    def test_service_path_warns(self, caplog):
        from repro.service import expand_cells

        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            cells, collapsed = expand_cells(self._dup_spec())
        assert collapsed == 1
        assert len(cells) == 1
        assert any("collapsed 1 duplicate" in r.message for r in caplog.records)

    def test_run_sweep_warns_once(self, caplog):
        from repro.analysis.sweep import run_sweep

        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            records = run_sweep(self._dup_spec())
        assert len(records) == 1
        warnings = [
            r for r in caplog.records if "duplicate grid cells" in r.message
        ]
        assert len(warnings) == 1


class TestTelemetryRenderNaN:
    """Satellite 2: a NaN-makespan report renders N/A, never crashes."""

    def _nan_report(self):
        L, W = 2, 4
        return TelemetryReport(
            span=float("nan"),
            window_dt=float("nan"),
            service=1e-6,
            link_ids=np.arange(L, dtype=np.int64),
            serve_series=np.zeros((L, W), dtype=np.int64),
            occupancy=np.zeros((L, W), dtype=np.float64),
            injections=np.zeros(4, dtype=np.int64),
            ejections=np.zeros(4, dtype=np.int64),
            injected_series=np.zeros(W, dtype=np.int64),
            delivered_series=np.zeros(W, dtype=np.int64),
            queue_depth_hist=np.zeros(1, dtype=np.int64),
            stall_hist=np.zeros(3, dtype=np.int64),
            stall_edges=np.array([1.0, 2.0]),
        )

    def test_nan_span_renders_na(self):
        from repro.telemetry import render_congestion_timeline

        text = render_congestion_timeline(self._nan_report())
        assert "N/A" in text
        assert "nan" not in text.lower().replace("n/a", "")

    def test_finite_report_unaffected(self):
        from repro.telemetry import render_congestion_timeline

        report = self._nan_report()
        report = TelemetryReport(
            **{
                **{f: getattr(report, f) for f in report.__dataclass_fields__},
                "span": 1.0,
                "window_dt": 0.25,
            }
        )
        text = render_congestion_timeline(report)
        assert "N/A" not in text
        assert "1.000e+00" in text
