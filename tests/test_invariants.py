"""The cross-layer validation package: registry, invariants, suite, fuzzing.

Four concerns:

1. **Registry** — the catalogue is complete, names are unique, unknown
   names are rejected, and applicability gating matches context contents.
2. **Detection power** — every invariant actually fires when its artifact
   is tampered with (a checker that never fails checks nothing).
3. **Tier-1 sweep** — the full catalogue holds over every application on
   all three topologies (static for every policy; with simulation and
   telemetry on the small configurations).
4. **Fuzz harness** — seeded draws are deterministic, the CI smoke seeds
   pass clean, and the shrinker reduces a failing case to the minimal
   still-failing configuration.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.apps.registry import get_app
from repro.routing.validate import walks_are_valid
from repro.topology.base import RouteIncidence
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D
from repro.validation import (
    REGISTRY,
    CheckContext,
    all_invariants,
    draw_case,
    invariant,
    run_check_suite,
    run_fuzz,
    run_invariants,
    shrink_case,
)
from repro.validation.fuzz import FuzzCase
from repro.validation.suite import attach_simulation, build_static_context

EXPECTED_INVARIANTS = {
    "trace-matrix-bytes",
    "link-volume-conservation",
    "route-walks",
    "hops-lower-bound",
    "eq5-utilization",
    "sim-structure",
    "telemetry-occupancy",
    "telemetry-flow",
    "cache-roundtrip",
    "streaming-equivalence",
    "composed-byte-conservation",
    "critpath-matching",
    "dag-acyclicity",
    "collective-byte-conservation",
}


@pytest.fixture(scope="module")
def small_ctx():
    """AMG@8 on a torus under minimal routing, with a bounded simulation."""
    trace = get_app("AMG").generate(8, columnar=True)
    ctx = build_static_context(trace, Torus3D((2, 2, 2)), routing="minimal")
    return attach_simulation(ctx, target_packets=4000, windows=6)


class TestRegistry:
    def test_catalogue_is_complete(self):
        assert {inv.name for inv in all_invariants()} == EXPECTED_INVARIANTS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            invariant("route-walks", "dup", "nowhere")(lambda ctx: iter(()))

    def test_unknown_name_rejected(self, small_ctx):
        with pytest.raises(ValueError):
            run_invariants(small_ctx, names=("no-such-invariant",))

    def test_applicability_gates_on_context_contents(self):
        empty = CheckContext(label="empty")
        assert not any(inv.applicable(empty) for inv in all_invariants())
        cache_only = CheckContext(label="rt", roundtrip={"x": (1, 1)})
        names = {
            inv.name for inv in all_invariants() if inv.applicable(cache_only)
        }
        assert names == {"cache-roundtrip"}

    def test_clean_scenario_passes_everything(self, small_ctx):
        assert run_invariants(small_ctx) == []


class TestDetection:
    """Each invariant fires when its artifact is corrupted."""

    def _names(self, violations):
        return {v.invariant for v in violations}

    def test_trace_matrix_bytes(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        nbytes = broken.p2p_matrix.nbytes.copy()
        nbytes[0] += 7
        broken.p2p_matrix = dataclasses.replace(broken.p2p_matrix, nbytes=nbytes)
        assert "trace-matrix-bytes" in self._names(run_invariants(broken))

    def test_dropped_incidence_rows(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        inc = broken.incidence
        broken.incidence = RouteIncidence(inc.pair_index[:-2], inc.link_id[:-2])
        names = self._names(run_invariants(broken))
        assert {"hops-lower-bound", "route-walks"} <= names

    def test_used_links_mismatch(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        broken.analysis = dataclasses.replace(
            broken.analysis, used_links=broken.analysis.used_links + 1
        )
        assert "link-volume-conservation" in self._names(run_invariants(broken))

    def test_understated_packet_hops(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        broken.analysis = dataclasses.replace(broken.analysis, packet_hops=0)
        assert "hops-lower-bound" in self._names(run_invariants(broken))

    def test_utilization_out_of_range(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        broken.analysis = dataclasses.replace(
            broken.analysis, execution_time=1e-300
        )
        assert "eq5-utilization" in self._names(run_invariants(broken))

    def test_sim_counter_mismatch(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        broken.sim = dataclasses.replace(
            broken.sim, total_hops=broken.sim.total_hops + 1
        )
        assert "sim-structure" in self._names(run_invariants(broken))

    def test_occupancy_over_capacity(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        occupancy = broken.telemetry.occupancy.copy()
        occupancy[0, 0] += 10 * broken.telemetry.window_dt
        broken.telemetry = dataclasses.replace(
            broken.telemetry, occupancy=occupancy
        )
        assert "telemetry-occupancy" in self._names(run_invariants(broken))

    def test_flow_leak(self, small_ctx):
        broken = dataclasses.replace(small_ctx)
        injections = broken.telemetry.injections.copy()
        injections[0] += 1
        broken.telemetry = dataclasses.replace(
            broken.telemetry, injections=injections
        )
        assert "telemetry-flow" in self._names(run_invariants(broken))

    def test_cache_roundtrip_mismatch(self, small_ctx):
        scaled = dataclasses.replace(
            small_ctx.full_matrix, nbytes=small_ctx.full_matrix.nbytes * 2
        )
        ctx = CheckContext(
            label="rt", roundtrip={"full_matrix": (small_ctx.full_matrix, scaled)}
        )
        assert self._names(run_invariants(ctx)) == {"cache-roundtrip"}


class TestDragonflyWalkBound:
    """Regression: Valiant can legitimately beat the direct 'minimal' route.

    For (a=6, h=3, p=3), nodes 6 -> 24 sit in groups 0 and 1 with neither
    endpoint router owning the direct global link's ports: the direct route
    needs 5 hops.  Routing through group 8 — whose gateway routers happen
    to align with both endpoints — yields a valid 4-hop walk.  So
    ``hops_array`` (the direct-route length) is NOT a walk lower bound;
    ``walk_hops_lower_bound`` is.
    """

    def test_direct_route_is_five_hops(self):
        topo = Dragonfly(6, 3, 3)
        assert topo.hops(6, 24) == 5

    def test_walk_bound_is_four_cross_group(self):
        topo = Dragonfly(6, 3, 3)
        src = np.array([6, 6, 6], dtype=np.int64)
        dst = np.array([24, 9, 6], dtype=np.int64)  # cross-group, local, self
        bound = topo.walk_hops_lower_bound(src, dst)
        assert bound.tolist() == [4, 3, 0]

    def test_four_hop_walk_exists(self):
        topo = Dragonfly(6, 3, 3)
        g = np.array([0], dtype=np.int64)
        links = np.array(
            [
                6,  # injection node link
                int(topo._global_link_id(g, g + 8)[0]),
                int(topo._global_link_id(g + 8, g + 1)[0]),
                24,  # ejection node link
            ],
            dtype=np.int64,
        )
        inc = RouteIncidence(np.zeros(4, dtype=np.int64), links)
        ok = walks_are_valid(
            topo,
            np.array([6], dtype=np.int64),
            np.array([24], dtype=np.int64),
            inc,
        )
        assert ok.tolist() == [True]

    def test_default_bound_equals_hops_array(self):
        for topo in (Torus3D((3, 3, 3)), FatTree(8, 3)):
            src = np.arange(8, dtype=np.int64)
            dst = (src + 5) % topo.num_nodes
            assert np.array_equal(
                topo.walk_hops_lower_bound(src, dst), topo.hops_array(src, dst)
            )


class TestSuite:
    def test_all_apps_static_all_policies(self):
        """Tier-1: every app on every topology under every routing policy."""
        report = run_check_suite(
            max_ranks=168, sim=False, cache_roundtrip=False
        )
        assert report.scenarios and report.ok(strict=True), report.render()

    def test_small_apps_with_simulation_and_cache(self):
        """Full catalogue — sims, telemetry, cache roundtrips — small end."""
        report = run_check_suite(
            max_ranks=27, target_packets=4000, windows=6
        )
        assert report.scenarios and report.ok(strict=True), report.render()
        # every invariant actually ran somewhere in the sweep
        assert report.checks >= len(EXPECTED_INVARIANTS) * len(report.scenarios) / 2

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            run_check_suite(max_ranks=8, routings=("bogus",))

    def test_apps_filter(self):
        report = run_check_suite(
            apps=("CrystalRouter",),
            topologies=("torus3d",),
            routings=("minimal",),
            sim=False,
            cache_roundtrip=False,
        )
        assert report.scenarios
        assert all("CrystalRouter" in s.label for s in report.scenarios)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_check_suite(apps=("NotAnApp",))

    def test_render_mentions_totals(self):
        report = run_check_suite(
            max_ranks=8,
            topologies=("torus3d",),
            routings=("minimal",),
            sim=False,
            cache_roundtrip=False,
        )
        assert "0 error(s)" in report.render().splitlines()[-1]


class TestFuzz:
    def test_draws_are_deterministic(self):
        assert draw_case(5) == draw_case(5)
        cases = {draw_case(s).minimal_tuple for s in range(12)}
        assert len(cases) > 1  # the pool is actually sampled

    def test_smoke_seeds_pass(self):
        report = run_fuzz(seeds=(0, 1), shrink_failures=False)
        assert report.ok, report.render()
        assert "2 case(s), 0 failure(s)" in report.render()

    def test_shrinker_finds_minimal_failing_case(self, monkeypatch):
        """With a planted bug in (dragonfly, valiant), the shrinker keeps
        those two dimensions and minimizes everything else."""
        from repro.validation import shrink as shrink_mod

        class FakeOutcome:
            def __init__(self, ok):
                self.ok = ok

        def fake_run_case(case, target_packets=8_000):
            fails = case.topology == "dragonfly" and case.routing == "valiant"
            return FakeOutcome(ok=not fails)

        monkeypatch.setattr(shrink_mod, "run_case", fake_run_case)
        start = FuzzCase(
            seed=99,
            app="LULESH",
            ranks=64,
            variant="",
            topology="dragonfly",
            routing="valiant",
            mapping="random",
            trace_seed=3,
            routing_seed=2,
            sim_seed=1,
        )
        minimal = shrink_case(start)
        assert minimal.topology == "dragonfly"
        assert minimal.routing == "valiant"
        assert minimal.mapping == "consecutive"
        assert (minimal.trace_seed, minimal.routing_seed, minimal.sim_seed) == (
            0,
            0,
            0,
        )
        assert minimal.ranks < start.ranks
