"""Tests for the synthetic application generators.

Every generator must (a) hit its Table-1 calibration aggregates, (b) be
deterministic, and (c) produce the structural properties its pattern
promises (stencil peers, sweep grids, hypercube partners, ...).
"""

import numpy as np
import pytest

from repro.apps.base import MB, CalibrationPoint, Channels
from repro.apps.registry import APPS, app_names, generate_trace, get_app, iter_configurations
from repro.comm.matrix import matrix_from_trace
from repro.comm.stats import trace_stats
from repro.metrics.peers import peers

SMALL = 300  # rank cap for per-config sweeps in tests


class TestRegistry:
    def test_all_sixteen_configured_apps(self):
        # 15 generators covering the paper's 16 trace families (Boxlib CNS's
        # two 256-rank traces are variants of one generator)
        assert len(APPS) == 15
        assert "AMG" in APPS and "SNAP" in APPS

    def test_app_names_order_stable(self):
        assert app_names()[0] == "AMG"

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("NOPE")

    def test_unknown_configuration(self):
        with pytest.raises(KeyError):
            generate_trace("AMG", 999)

    def test_derived_type_markers_match_paper(self):
        starred = {name for name, app in APPS.items() if app.uses_derived_types}
        assert starred == {"Boxlib_CNS", "MOCFE", "Nekbone", "PARTISN", "SNAP"}

    def test_iter_configurations_cap(self):
        ranks = [p.ranks for _, p in iter_configurations(max_ranks=100)]
        assert ranks and max(ranks) <= 100

    def test_total_configuration_count(self):
        # Table 1 has 41 rows (including the three duplicated-scale variants)
        assert sum(1 for _ in iter_configurations()) == 41


class TestCalibration:
    @pytest.mark.parametrize(
        "app,point",
        [(a.name, p) for a, p in iter_configurations(max_ranks=SMALL)],
        ids=lambda v: str(getattr(v, "ranks", v)),
    )
    def test_volume_and_split_match_table1(self, app, point):
        trace = generate_trace(app, point.ranks, variant=point.variant)
        stats = trace_stats(trace)
        assert stats.total_mb == pytest.approx(point.volume_mb, rel=0.02)
        assert stats.p2p_share == pytest.approx(point.p2p_share, abs=0.02)
        assert stats.execution_time == point.time_s

    def test_throughput_column_consistent(self):
        trace = generate_trace("CrystalRouter", 10)
        stats = trace_stats(trace)
        # paper: 133.8 MB over 0.1438 s = ~930 MB/s
        assert stats.throughput_mb_per_s == pytest.approx(930.0, rel=0.05)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("MiniFE", 18, seed=1)
        b = generate_trace("MiniFE", 18, seed=1)
        assert a.events == b.events

    def test_different_seeds_differ_for_randomized_apps(self):
        a = generate_trace("MOCFE", 64, seed=1)
        b = generate_trace("MOCFE", 64, seed=2)
        assert a.events != b.events

    def test_seed_zero_is_default(self):
        assert generate_trace("AMG", 8).events == generate_trace("AMG", 8, seed=0).events


class TestStructure:
    def test_lulesh_halo_peers(self):
        m = matrix_from_trace(generate_trace("LULESH", 64), include_collectives=False)
        assert peers(m) == 26

    def test_amg_full_connectivity_at_8(self):
        m = matrix_from_trace(generate_trace("AMG", 8), include_collectives=False)
        assert peers(m) == 7

    def test_crystal_router_hypercube_partners(self):
        m = matrix_from_trace(
            generate_trace("CrystalRouter", 100), include_collectives=False
        )
        # partners of rank 0: 1, 2, 4, 8, 16, 32, 64
        dsts, _ = m.row(0)
        assert set(dsts.tolist()) == {1, 2, 4, 8, 16, 32, 64}

    def test_partisn_peers_everyone(self):
        m = matrix_from_trace(generate_trace("PARTISN", 168), include_collectives=False)
        assert peers(m) == 167

    def test_all_collective_apps_have_no_p2p(self):
        for name, ranks in (("BigFFT", 9), ("CMC_2D", 64)):
            trace = generate_trace(name, ranks)
            m = matrix_from_trace(trace, include_collectives=False)
            assert m.num_pairs == 0, name

    def test_derived_type_apps_use_opaque_dtype(self):
        trace = generate_trace("SNAP", 168)
        dtypes = {ev.dtype for ev in trace.events}
        assert dtypes == {"SNAP_DERIVED_T"}
        assert trace.datatypes.size_of("SNAP_DERIVED_T") == 1

    def test_variants_share_pattern_but_not_time(self):
        a = generate_trace("LULESH", 64)
        b = generate_trace("LULESH", 64, variant="b")
        assert a.meta.execution_time != b.meta.execution_time
        ma = matrix_from_trace(a, include_collectives=False)
        mb = matrix_from_trace(b, include_collectives=False)
        assert np.array_equal(ma.src, mb.src) and np.array_equal(ma.dst, mb.dst)

    def test_no_self_channels(self):
        for name, ranks in (("AMG", 27), ("MOCFE", 64), ("SNAP", 168)):
            m = matrix_from_trace(generate_trace(name, ranks), include_collectives=False)
            assert not np.any(m.src == m.dst), name

    def test_events_within_rank_range(self):
        trace = generate_trace("AMR_Miniapp", 64)
        assert max(trace.active_ranks()) < 64

    def test_timestamps_monotone(self):
        trace = generate_trace("MiniFE", 18)
        times = [ev.t_enter for ev in trace.events]
        assert times == sorted(times)
        assert times[-1] <= trace.meta.execution_time


class TestChannels:
    def test_concatenate_preserves_factors(self):
        a = Channels(np.array([0]), np.array([1]), np.array([1.0]))
        b = Channels(
            np.array([1]), np.array([2]), np.array([2.0])
        ).with_calls_factor(0.5)
        c = Channels.concatenate([a, b])
        assert c.factors().tolist() == [1.0, 0.5]

    def test_self_channel_rejected(self):
        with pytest.raises(ValueError):
            Channels(np.array([1]), np.array([1]), np.array([1.0]))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Channels(np.array([0]), np.array([1]), np.array([-1.0]))


class TestCalibrationPoint:
    def test_byte_targets(self):
        p = CalibrationPoint(8, 1.0, 100.0, 0.75)
        assert p.p2p_bytes == int(75 * MB)
        assert p.collective_logical_bytes == int(25 * MB)

    def test_validation(self):
        with pytest.raises(ValueError):
            CalibrationPoint(0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CalibrationPoint(8, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CalibrationPoint(8, 1.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            CalibrationPoint(8, 1.0, 1.0, 1.0, iterations=0)
