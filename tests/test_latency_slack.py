"""Tests for the latency model and the bandwidth-slack analysis."""

import numpy as np
import pytest

from repro.comm.matrix import matrix_from_trace
from repro.mapping.base import Mapping
from repro.model.latency import LatencyModel
from repro.model.slack import bandwidth_slack
from repro.topology.dragonfly import Dragonfly
from repro.topology.torus import Torus3D

from helpers import make_matrix


class TestLatencyModel:
    def test_zero_hop_is_serialization_only(self):
        model = LatencyModel(bandwidth=1e9)
        assert model.message_latency(1000, 0) == pytest.approx(1e-6)

    def test_scales_with_hops(self):
        model = LatencyModel(switch_latency_s=100e-9, wire_latency_s=0.0)
        l1 = model.message_latency(0, 1)
        l5 = model.message_latency(0, 5)
        assert l5 == pytest.approx(5 * l1)

    def test_cut_through_faster_than_store_and_forward(self):
        ct = LatencyModel(cut_through=True)
        sf = LatencyModel(cut_through=False)
        nbytes, hops = 100_000, 6
        assert ct.message_latency(nbytes, hops) < sf.message_latency(nbytes, hops)

    def test_store_and_forward_single_hop_equals_cut_through(self):
        ct = LatencyModel(cut_through=True)
        sf = LatencyModel(cut_through=False)
        assert ct.message_latency(5000, 1) == pytest.approx(
            sf.message_latency(5000, 1)
        )

    def test_vectorized_matches_scalar(self):
        model = LatencyModel(cut_through=False)
        nbytes = np.array([0, 100, 4096, 100_000])
        hops = np.array([0, 1, 3, 6])
        vec = model.message_latency_array(nbytes, hops)
        for nb, h, v in zip(nbytes, hops, vec):
            assert v == pytest.approx(model.message_latency(int(nb), int(h)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(switch_latency_s=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            LatencyModel().message_latency(-1, 0)

    def test_report_on_matrix(self):
        m = make_matrix(8, [(0, 1, 4096), (0, 7, 4096)])
        report = LatencyModel().report(m, Torus3D((2, 2, 2)))
        assert report.mean_message_latency_s > 0
        assert report.p50_message_latency_s <= report.p99_message_latency_s
        assert report.p99_message_latency_s <= report.max_message_latency_s

    def test_report_empty_matrix(self):
        report = LatencyModel().report(make_matrix(4, []), Torus3D((2, 2, 2)))
        assert report.mean_message_latency_s == 0.0

    def test_longer_routes_mean_higher_latency(self, lulesh64_trace):
        matrix = matrix_from_trace(lulesh64_trace)
        model = LatencyModel()
        torus = LatencyModel().report(matrix, Torus3D((4, 4, 4)))
        # scrambled placement lengthens routes, so latency must rise
        scrambled = matrix.remapped(np.random.default_rng(0).permutation(64))
        worse = model.report(scrambled, Torus3D((4, 4, 4)))
        assert worse.mean_message_latency_s > torus.mean_message_latency_s


class TestBandwidthSlack:
    def test_idle_link_has_huge_slack(self):
        m = make_matrix(8, [(0, 1, 1000)])
        report = bandwidth_slack(
            m, Torus3D((2, 2, 2)), execution_time=1.0, bandwidth=1e9
        )
        assert report.num_links == 1
        assert report.min_slack == pytest.approx(1e9 / 1000)

    def test_saturated_link_has_no_slack(self):
        m = make_matrix(8, [(0, 1, 10_000)])
        report = bandwidth_slack(
            m, Torus3D((2, 2, 2)), execution_time=1.0, bandwidth=10_000.0
        )
        assert report.min_slack == pytest.approx(1.0)
        assert report.uniform_power_saving() == 0.0

    def test_uniform_saving_formula(self):
        m = make_matrix(8, [(0, 1, 1000)])
        report = bandwidth_slack(
            m, Torus3D((2, 2, 2)), execution_time=1.0, bandwidth=10_000.0
        )
        # slack = 10x -> slow 10x -> power ~ bw^2 -> save 99%
        assert report.uniform_power_saving(alpha=2.0) == pytest.approx(0.99)

    def test_per_link_saving_at_least_uniform(self):
        m = make_matrix(8, [(0, 1, 9_000), (2, 3, 10)])
        report = bandwidth_slack(
            m, Torus3D((2, 2, 2)), execution_time=1.0, bandwidth=10_000.0
        )
        assert report.per_link_power_saving() >= report.uniform_power_saving()

    def test_dragonfly_global_links_have_less_slack(self):
        df = Dragonfly(4, 2, 2)
        # heavy cross-group traffic concentrates on the single global link
        pairs = [(0, 8 + i, 50_000) for i in range(8)]
        m = make_matrix(df.num_nodes, pairs)
        report = bandwidth_slack(m, df, execution_time=1.0)
        gl = report.global_vs_local_slack()
        assert gl is not None
        global_slack, local_slack = gl
        assert global_slack <= local_slack

    def test_empty_matrix(self):
        report = bandwidth_slack(make_matrix(4, []), Torus3D((2, 2, 2)), 1.0)
        assert report.num_links == 0
        assert report.min_slack == float("inf")
        assert report.per_link_power_saving() == 0.0

    def test_validation(self):
        m = make_matrix(8, [(0, 1, 1)])
        with pytest.raises(ValueError):
            bandwidth_slack(m, Torus3D((2, 2, 2)), execution_time=0.0)
        with pytest.raises(ValueError):
            bandwidth_slack(m, Torus3D((2, 2, 2)), 1.0, bandwidth=0.0)

    def test_mapping_respected(self):
        m = make_matrix(8, [(0, 1, 1000)])
        colocated = Mapping(np.zeros(8, dtype=np.int64), 8)
        report = bandwidth_slack(m, Torus3D((2, 2, 2)), 1.0, mapping=colocated)
        assert report.num_links == 0
