"""NaN and empty-traffic rendering: "N/A" everywhere, "nan" nowhere.

The paper prints N/A for all-collective workloads (no p2p traffic); the
same convention must hold for *any* NaN metric in every output surface —
aligned text tables, the report command, and JSON/CSV exports (where the
value becomes ``null``/empty instead).  Zero-volume inputs must render,
not raise.
"""

from __future__ import annotations

import json
import math

from helpers import make_trace

from repro.analysis.export import rows_to_csv, rows_to_json, table3_records
from repro.analysis.tables import build_table3_row, render_table3
from repro.metrics.summary import MPILevelMetrics, mpi_level_metrics
from repro.util import NA, fmt_float, nan_to_none


class TestUtil:
    def test_fmt_float_nan(self):
        assert fmt_float(math.nan) == NA
        assert fmt_float(math.nan, ".2f") == NA

    def test_fmt_float_none(self):
        assert fmt_float(None) == NA

    def test_fmt_float_value(self):
        assert fmt_float(1.25, ".1f") == "1.2"
        assert fmt_float(3, "d") == "3"

    def test_nan_to_none(self):
        assert nan_to_none(math.nan) is None
        assert nan_to_none(None) is None
        assert nan_to_none(2.5) == 2.5


class TestSummaryRow:
    def test_no_p2p_renders_na(self):
        metrics = mpi_level_metrics(make_trace(4))
        assert metrics.peers == 0
        row = metrics.format_row()
        assert "N/A" in row and "nan" not in row.lower()

    def test_nan_cell_with_p2p_renders_na(self):
        # peers > 0 but a NaN metric: each cell renders independently
        metrics = MPILevelMetrics(
            app="X",
            variant="",
            num_ranks=4,
            peers=2,
            rank_distance_90=math.nan,
            rank_locality_90=math.nan,
            selectivity_90=1.5,
        )
        row = metrics.format_row()
        assert "N/A" in row and "1.5" in row
        assert "nan" not in row.lower()


class TestZeroVolumePipeline:
    """An empty (all-collective-free, zero-byte) trace flows through the
    whole Table-3 pipeline without raising and without leaking "nan"."""

    def _row(self):
        return build_table3_row(make_trace(8))

    def test_render_table3(self):
        text = render_table3([self._row()])
        assert "N/A" in text
        assert "nan" not in text.lower()

    def test_json_export_uses_null(self):
        records = table3_records([self._row()])
        payload = rows_to_json(records)
        assert "nan" not in payload.lower() or "null" in payload
        decoded = json.loads(payload)  # must be strict-JSON parseable
        assert decoded[0]["peers"] is None
        assert decoded[0]["rank_distance_90"] is None

    def test_csv_export_has_no_nan(self):
        records = table3_records([self._row()])
        csv_text = rows_to_csv(records)
        assert "nan" not in csv_text.lower()


class TestExportNanScrubbing:
    def test_nan_metric_becomes_null(self):
        row = self._row_with_nan_distance()
        record = table3_records([row])[0]
        assert record["rank_distance_90"] is None
        assert record["selectivity_90"] == 2.0

    @staticmethod
    def _row_with_nan_distance():
        import dataclasses

        row = build_table3_row(make_trace(8))
        metrics = dataclasses.replace(
            row.metrics,
            peers=3,
            rank_distance_90=math.nan,
            selectivity_90=2.0,
        )
        return dataclasses.replace(row, metrics=metrics)
