"""Tests for the published-values data module and the comparison engine."""

import math

import pytest

from repro.analysis.tables import build_table3
from repro.apps.registry import iter_configurations
from repro.paper.compare import (
    CellComparison,
    compare_table3,
    deviation_summary,
)
from repro.paper.values import TABLE1, TABLE3, TABLE4, table1_row, table3_row


class TestPublishedValues:
    def test_table1_has_all_41_rows(self):
        assert len(TABLE1) == 41

    def test_table3_has_all_41_rows(self):
        assert len(TABLE3) == 41

    def test_table4_has_all_10_rows(self):
        assert len(TABLE4) == 10

    def test_every_configuration_has_published_rows(self):
        """Our calibration grid and the paper's tables cover the same keys."""
        ours = {(a.name, p.ranks, p.variant) for a, p in iter_configurations()}
        assert ours == set(TABLE1)
        assert ours == set(TABLE3)

    def test_lookup(self):
        row = table3_row("LULESH", 64)
        assert row.peers == 26
        assert row.rank_distance_90 == 15.7
        assert table1_row("AMG", 8).volume_mb == 3.0

    def test_lookup_variant(self):
        assert table1_row("LULESH", 64, "b").time_s == 44.03

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            table3_row("AMG", 999)

    def test_na_rows_consistent(self):
        """All-collective apps have N/A MPI-level metrics in the paper too."""
        for (app, _, _), row in TABLE3.items():
            if app in ("BigFFT", "CMC_2D"):
                assert row.peers is None
                assert row.selectivity_90 is None
            else:
                assert row.peers is not None

    def test_table1_shares_sum_to_100(self):
        for row in TABLE1.values():
            assert row.p2p_percent + row.collective_percent == pytest.approx(
                100.0, abs=0.02
            )

    def test_throughput_consistent_with_volume_and_time(self):
        """Internal consistency of the transcription (loose: the paper's
        printed times are rounded to 2 decimals)."""
        inconsistent = []
        for key, row in TABLE1.items():
            derived = row.volume_mb / row.time_s
            if not math.isclose(derived, row.throughput_mb_s, rel_tol=0.25):
                inconsistent.append(key)
        # AMG@216 and MultiGrid_C@125 are inconsistent in the paper itself
        assert len(inconsistent) <= 3, inconsistent


class TestComparisonEngine:
    def test_ratio(self):
        cell = CellComparison("x", "col", 2.0, 3.0)
        assert cell.ratio == pytest.approx(1.5)
        assert cell.within_factor(2.0)
        assert not cell.within_factor(1.2)

    def test_na_cells(self):
        assert CellComparison("x", "c", None, 1.0).ratio is None
        assert CellComparison("x", "c", 1.0, None).ratio is None
        assert CellComparison("x", "c", 1.0, float("nan")).ratio is None
        assert CellComparison("x", "c", 1.0, None).within_factor(2.0) is None

    def test_summary_empty(self):
        s = deviation_summary([])
        assert s.comparable_cells == 0
        assert s.geometric_mean_ratio == 1.0

    def test_summary_statistics(self):
        cells = [
            CellComparison("a", "c", 1.0, 1.0),
            CellComparison("b", "c", 1.0, 2.0),
            CellComparison("c", "c", 1.0, 4.0),
        ]
        s = deviation_summary(cells)
        assert s.comparable_cells == 3
        assert s.within_2x == 2
        assert s.within_3x == 2
        assert s.geometric_mean_ratio == pytest.approx(2.0)
        assert s.worst is not None and s.worst.label == "c"

    def test_compare_on_small_grid(self):
        rows = build_table3(max_ranks=70)
        cells = compare_table3(rows)
        assert cells  # every small config has a published counterpart
        summary = deviation_summary(cells)
        # the small grid agrees well with the paper
        assert summary.within_2x >= 0.75 * summary.comparable_cells
        assert 0.4 < summary.geometric_mean_ratio < 2.0

    def test_lines_render(self):
        rows = build_table3(max_ranks=30)
        summary = deviation_summary(compare_table3(rows))
        text = "\n".join(summary.lines())
        assert "within 2x" in text
