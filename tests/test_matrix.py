"""Tests for the traffic-matrix builder and transforms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.matrix import CommMatrix, CommMatrixBuilder, matrix_from_trace
from repro.core.events import CollectiveEvent, CollectiveOp, P2PEvent

from helpers import make_matrix, make_trace


class TestBuilder:
    def test_single_message(self):
        m = make_matrix(4, [(0, 1, 1000)])
        assert m.num_pairs == 1
        assert m.total_bytes == 1000
        assert m.total_messages == 1
        assert m.total_packets == 1

    def test_duplicate_pairs_merge(self):
        m = make_matrix(4, [(0, 1, 100), (0, 1, 200)])
        assert m.num_pairs == 1
        assert m.total_bytes == 300
        assert m.total_messages == 2

    def test_packets_per_message_not_per_pair(self):
        # two 3000-byte messages need 2 packets (1 each), even though the
        # pair total of 6000 bytes would fit in 2 anyway; three 1500-byte
        # messages need 3 packets though their 4500-byte total fits in 2.
        b = CommMatrixBuilder(2)
        b.add_message(0, 1, 1500, calls=3)
        assert b.finalize().total_packets == 3

    def test_calls_multiply(self):
        b = CommMatrixBuilder(2)
        b.add_message(0, 1, 5000, calls=10)
        m = b.finalize()
        assert m.total_messages == 10
        assert m.total_bytes == 50000
        assert m.total_packets == 20  # 2 packets per 5000-byte message

    def test_sorted_by_pair(self):
        m = make_matrix(4, [(3, 1, 1), (0, 2, 1), (0, 1, 1)])
        keys = m.src * 4 + m.dst
        assert np.all(np.diff(keys) > 0)

    def test_out_of_range_rejected(self):
        b = CommMatrixBuilder(2)
        b.add_message(0, 1, 10)
        b.add_arrays(
            np.array([5]), np.array([0]), np.array([1]), np.array([1]), np.array([1])
        )
        with pytest.raises(ValueError):
            b.finalize()

    def test_empty(self):
        m = CommMatrixBuilder(4).finalize()
        assert m.num_pairs == 0
        assert m.total_bytes == 0


class TestViews:
    def test_dense(self):
        m = make_matrix(3, [(0, 1, 10), (2, 0, 5)])
        d = m.dense()
        assert d[0, 1] == 10 and d[2, 0] == 5 and d.sum() == 15

    def test_row(self):
        m = make_matrix(4, [(1, 0, 7), (1, 3, 9), (2, 0, 1)])
        dsts, nbytes = m.row(1)
        assert sorted(dsts.tolist()) == [0, 3]
        assert nbytes.sum() == 16

    def test_marginals(self):
        m = make_matrix(3, [(0, 1, 10), (0, 2, 20), (1, 0, 5)])
        assert m.out_bytes_per_rank().tolist() == [30, 5, 0]
        assert m.in_bytes_per_rank().tolist() == [5, 10, 20]

    def test_partners_excludes_self(self):
        m = make_matrix(3, [(0, 0, 10), (0, 1, 10), (0, 2, 10)])
        assert m.partners_per_rank()[0] == 2


class TestTransforms:
    def test_without_self_traffic(self):
        m = make_matrix(3, [(0, 0, 10), (0, 1, 20)])
        cleaned = m.without_self_traffic()
        assert cleaned.num_pairs == 1
        assert cleaned.total_bytes == 20

    def test_without_self_traffic_noop_returns_self(self):
        m = make_matrix(3, [(0, 1, 20)])
        assert m.without_self_traffic() is m

    def test_remap_preserves_totals(self):
        m = make_matrix(4, [(0, 1, 10), (2, 3, 7)])
        perm = np.array([3, 2, 1, 0])
        r = m.remapped(perm)
        assert r.total_bytes == m.total_bytes
        assert r.dense()[3, 2] == 10
        assert r.dense()[1, 0] == 7

    def test_remap_requires_bijection(self):
        m = make_matrix(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            m.remapped(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            m.remapped(np.array([0, 1]))

    def test_merge(self):
        a = make_matrix(3, [(0, 1, 10)])
        b = make_matrix(3, [(0, 1, 5), (1, 2, 1)])
        merged = a.merged_with(b)
        assert merged.total_bytes == 16
        assert merged.num_pairs == 2

    def test_merge_rank_mismatch(self):
        with pytest.raises(ValueError):
            make_matrix(3, [(0, 1, 1)]).merged_with(make_matrix(4, [(0, 1, 1)]))


class TestFromTrace:
    def test_p2p_only(self, mixed_trace):
        m = matrix_from_trace(mixed_trace, include_collectives=False)
        assert m.total_bytes == 3 * 5000 + 100 * 4

    def test_collectives_add_wire_volume(self, mixed_trace):
        full = matrix_from_trace(mixed_trace)
        p2p = matrix_from_trace(mixed_trace, include_collectives=False)
        assert full.total_bytes == p2p.total_bytes + 2 * 4 * 64

    def test_repeat_compression_equivalent_to_expansion(self):
        compact = make_trace(3)
        compact.add(P2PEvent(caller=0, peer=1, count=3000, dtype="MPI_BYTE", repeat=5))
        expanded = make_trace(3)
        for _ in range(5):
            expanded.add(P2PEvent(caller=0, peer=1, count=3000, dtype="MPI_BYTE"))
        mc = matrix_from_trace(compact)
        me = matrix_from_trace(expanded)
        assert mc.total_bytes == me.total_bytes
        assert mc.total_messages == me.total_messages
        assert mc.total_packets == me.total_packets

    def test_collective_only_filter(self):
        trace = make_trace(4)
        trace.add(P2PEvent(caller=0, peer=1, count=10, dtype="MPI_BYTE"))
        for r in range(4):
            trace.add(CollectiveEvent(caller=r, op=CollectiveOp.ALLGATHER, count=2))
        m = matrix_from_trace(trace, include_p2p=False)
        assert m.total_bytes == 4 * 4 * 2  # each caller to all members


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 9), st.integers(0, 9), st.integers(0, 10**6),
            st.integers(1, 20),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_builder_totals_property(entries):
    """Totals equal the sums of whatever was added, regardless of merging."""
    builder = CommMatrixBuilder(10)
    expected_bytes = 0
    expected_msgs = 0
    for src, dst, nbytes, calls in entries:
        builder.add_message(src, dst, nbytes, calls)
        expected_bytes += nbytes * calls
        expected_msgs += calls
    m = builder.finalize()
    assert m.total_bytes == expected_bytes
    assert m.total_messages == expected_msgs
    assert m.total_packets >= expected_msgs  # every message >= 1 packet
    # pair keys unique
    keys = m.src * 10 + m.dst
    assert len(np.unique(keys)) == len(keys)
