"""Tests for link-load statistics and the energy model."""

import numpy as np
import pytest

from repro.mapping.base import Mapping
from repro.model.energy import SERDES_POWER_SHARE, EnergyModel
from repro.model.engine import analyze_network
from repro.model.linkload import link_load_stats, link_loads
from repro.topology.dragonfly import Dragonfly
from repro.topology.torus import Torus3D

from helpers import make_matrix


class TestLinkLoads:
    def test_loads_conserve_byte_hops(self):
        m = make_matrix(8, [(0, 1, 100), (0, 7, 300)])
        topo = Torus3D((2, 2, 2))
        ids, loads = link_loads(m, topo)
        # bytes * hops: 100*1 + 300*3
        assert loads.sum() == pytest.approx(1000.0)

    def test_empty_matrix(self):
        stats = link_load_stats(make_matrix(8, []), Torus3D((2, 2, 2)))
        assert stats.num_used_links == 0
        assert stats.gini == 0.0

    def test_uniform_single_link(self):
        m = make_matrix(8, [(0, 1, 500)])
        stats = link_load_stats(m, Torus3D((2, 2, 2)))
        assert stats.num_used_links == 1
        assert stats.max_load == 500
        assert stats.max_over_mean == pytest.approx(1.0)
        assert stats.gini == pytest.approx(0.0)

    def test_gini_detects_skew(self):
        even = make_matrix(8, [(0, 1, 100), (2, 3, 100)])
        skew = make_matrix(8, [(0, 1, 10_000), (2, 3, 1)])
        topo = Torus3D((2, 2, 2))
        assert link_load_stats(skew, topo).gini > link_load_stats(even, topo).gini

    def test_dragonfly_global_byte_share(self):
        df = Dragonfly(4, 2, 2)
        m = make_matrix(df.num_nodes, [(0, 8, 1000)])  # cross-group
        stats = link_load_stats(m, df)
        assert stats.global_link_byte_share is not None
        assert 0.0 < stats.global_link_byte_share < 1.0

    def test_respects_mapping(self):
        m = make_matrix(4, [(0, 1, 100)])
        topo = Torus3D((2, 2, 2))
        colocated = Mapping(np.zeros(4, dtype=np.int64), 8)
        ids, loads = link_loads(m, topo, colocated)
        assert len(ids) == 0


class TestEnergyModel:
    def test_static_energy(self):
        model = EnergyModel(link_power_w=2.0)
        assert model.static_energy_j(10, 5.0) == pytest.approx(100.0)

    def test_report_partitions_energy(self):
        m = make_matrix(8, [(0, 1, 4096)])
        analysis = analyze_network(
            m, Torus3D((2, 2, 2)), execution_time=1.0, bandwidth=8192.0
        )
        report = EnergyModel(link_power_w=1.0).report(analysis)
        assert report.total_energy_j == pytest.approx(1.0)
        assert report.useful_energy_j + report.idle_energy_j == pytest.approx(
            report.total_energy_j
        )
        assert report.useful_fraction == pytest.approx(analysis.utilization)

    def test_gating_savings_bounded_by_serdes_share(self):
        m = make_matrix(8, [(0, 1, 100)])
        analysis = analyze_network(m, Torus3D((2, 2, 2)), execution_time=100.0)
        report = EnergyModel().report(analysis)
        assert report.gating_savings_j <= SERDES_POWER_SHARE * report.total_energy_j
        assert report.gating_savings_j == pytest.approx(
            report.idle_energy_j * SERDES_POWER_SHARE
        )

    def test_low_utilization_means_big_savings(self):
        """The paper's point: at <1% utilization almost all energy is waste."""
        m = make_matrix(8, [(0, 1, 100)])
        analysis = analyze_network(m, Torus3D((2, 2, 2)), execution_time=1000.0)
        assert analysis.utilization < 0.01
        report = EnergyModel().report(analysis)
        assert report.useful_fraction < 0.01
        assert report.frequency_scaling_savings_j > 0.9 * report.total_energy_j

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(link_power_w=0.0)
        with pytest.raises(ValueError):
            EnergyModel(serdes_share=1.5)
        with pytest.raises(ValueError):
            EnergyModel(frequency_exponent=0.5)
        with pytest.raises(ValueError):
            EnergyModel().static_energy_j(10, -1.0)
