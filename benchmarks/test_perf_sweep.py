"""Performance gate for the sharded sweep service.

Runs the full prime + measure protocol from :mod:`repro.bench` on the
216-cell reference grid and gates on the ISSUE-7 targets: a warm sharded
sweep at least 5x faster than a cold serial one, the affinity scheduler
beating random placement on warm-hit rate, and — non-negotiably —
bit-identical records across every mode.  Writes ``BENCH_sweep.json`` at
the repo root (uploaded as a CI artifact) as a side effect.

Run with: PYTHONPATH=src python -m pytest benchmarks/test_perf_sweep.py -m perf -v
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import run_sweep_bench, write_sweep_bench

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


@pytest.fixture(scope="module")
def sweep_bench():
    data = run_sweep_bench()
    write_sweep_bench(BENCH_PATH, data)
    return data


class TestSweepServicePerf:
    def test_grid_shape(self, sweep_bench):
        summary = sweep_bench["summary"]
        assert summary["cells"] == 216
        assert summary["apps"] == 6

    def test_records_bit_identical_across_modes(self, sweep_bench):
        assert sweep_bench["summary"]["records_identical"], (
            "service records diverged from serial run_sweep (or between "
            "schedulers) — caching/scheduling must not change results"
        )

    def test_warm_sharded_beats_cold_serial(self, sweep_bench):
        summary = sweep_bench["summary"]
        assert summary["warm_speedup"] >= summary["warm_speedup_target"], (
            f"warm sharded sweep {summary['warm_affinity_s']:.2f}s vs cold "
            f"serial {summary['cold_serial_s']:.2f}s = "
            f"{summary['warm_speedup']:.2f}x, below the "
            f"{summary['warm_speedup_target']:.1f}x target"
        )

    def test_affinity_beats_random_on_warm_hits(self, sweep_bench):
        summary = sweep_bench["summary"]
        assert summary["affinity_beats_random"], (
            f"affinity warm-hit rate {summary['affinity_hit_rate']:.4f} did "
            f"not beat random placement {summary['random_hit_rate']:.4f}"
        )
