"""Benchmark: the paper's headline claims over the full experiment grid.

§5-§8 aggregate statements, evaluated exactly as the paper states them.
"""

import pytest

from repro.analysis.claims import evaluate_claims, render_claims
from repro.analysis.figures import build_figure5

from _bench_utils import once, write_output


@pytest.fixture(scope="module")
def report(table3_full):
    return evaluate_claims(table3_full, build_figure5())


def test_claims_full(benchmark, table3_full):
    result = once(benchmark, evaluate_claims, table3_full, build_figure5())
    write_output("claims.txt", render_claims(result))
    assert result.num_configs == 41


def test_selectivity_mostly_at_most_ten(report):
    """Paper §8: 'In 89% of all configurations, these sets include less
    than ten ranks.'"""
    assert report.selectivity_le_10_share >= 0.75


def test_rank_distance_grows_with_scale(report):
    """Paper §5.1: 'the distance increases for all workloads with the
    number of ranks'."""
    assert report.distance_grows_share >= 0.9


def test_torus_wins_small_configurations(report):
    """Paper §6.2: the torus provides the lowest hop average for small
    problem sizes (< 256 ranks), with isolated exceptions (SNAP)."""
    assert report.torus_wins_small >= report.small_configs * 0.5


def test_fat_tree_wins_large_configurations(report):
    """Paper §6.2/§8: at >= 256 ranks the lower diameter wins for scattered
    and collective traffic.  In our model, rank-aligned 3D stencil apps keep
    winning on the torus at scale (their traffic genuinely stays 1-2 hops
    away), so the fat tree's share is lower than the paper's — see
    EXPERIMENTS.md."""
    assert report.fattree_wins_large >= report.large_configs * 0.4


def test_dragonfly_messages_mostly_global(report):
    """Paper §6.2: 'on average 95% of all messages over all applications
    use a global inter-group link'.  Aligned stencil traffic keeps more
    packets inside a group in our model, lowering the mean (EXPERIMENTS.md);
    the majority of packets still cross groups."""
    assert report.dragonfly_global_share_mean >= 0.55


def test_network_mostly_idle(report):
    """Paper §8: in ~93% of configurations utilization stays below 1% —
    every application except BigFFT."""
    assert report.utilization_below_1pct_share >= 0.85


def test_multicore_saturation(report):
    """Paper §6.1: saturation at 8-16 cores per socket."""
    assert report.multicore_saturation_ok_share is not None
    assert report.multicore_saturation_ok_share >= 0.6


def test_bigfft_is_the_only_hot_app(table3_full):
    hot = {
        row.metrics.app
        for row in table3_full
        if max(n.utilization for n in row.network.values()) >= 0.01
    }
    assert "BigFFT" in hot
    assert hot <= {"BigFFT", "CrystalRouter", "Nekbone"}  # near-threshold apps
