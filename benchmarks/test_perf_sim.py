"""Performance benchmarks of the batched simulator and the cached pipeline.

Run with ``pytest -m perf benchmarks/test_perf_sim.py``.  Two calibrated
measurements, each asserting a *ratio* (robust to machine speed):

1. the batched NumPy kernel vs the per-event reference loop on a 500k-packet
   dragonfly simulation (target: >= 10x packet-hop throughput);
2. a full Table-3 reproduction cold vs warm through the content-keyed cache
   (target: >= 3x; the incidence region is sized so the 41-config x
   3-topology grid fits).

Measured numbers are recorded in ``BENCH_sim.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import cache
from repro.analysis.tables import build_table3
from repro.comm.matrix import CommMatrixBuilder
from repro.sim.common import prepare_simulation
from repro.sim.engine import run_batched
from repro.sim.reference import run_reference
from repro.topology.dragonfly import Dragonfly

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Benchmark workload: ~500k packets through a 1056-node Dragonfly(8,4,4)
#: at ~30% dynamic utilization — dense enough that the per-event loop is at
#: its worst, congested enough (about half the packets queue) to be a
#: meaningful dynamic regime rather than a free-flowing one.
NUM_PAIRS = 2_000
PACKETS_PER_PAIR = 250
EXECUTION_TIME = 1.1e-3
SEED = 7

SIM_SPEEDUP_TARGET = 10.0
TABLE3_SPEEDUP_TARGET = 3.0


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PATH.is_file():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _dragonfly_workload():
    topo = Dragonfly(8, 4, 4)
    rng = np.random.default_rng(0)
    builder = CommMatrixBuilder(topo.num_nodes)
    src = rng.integers(0, topo.num_nodes, NUM_PAIRS)
    dst = (src + rng.integers(1, topo.num_nodes, NUM_PAIRS)) % topo.num_nodes
    packets = np.full(NUM_PAIRS, PACKETS_PER_PAIR, dtype=np.int64)
    builder.add_arrays(src, dst, packets * 4096, packets, packets)
    return builder.finalize(), topo


class TestSimulatorSpeedup:
    def test_batched_10x_on_500k_packets(self):
        matrix, topo = _dragonfly_workload()
        setup = prepare_simulation(
            matrix,
            topo,
            execution_time=EXECUTION_TIME,
            seed=SEED,
            max_packets=2_000_000,
        )
        assert setup.total_packets >= 500_000

        t0 = time.perf_counter()
        batched = run_batched(setup)
        batched_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        reference = run_reference(setup)
        reference_s = time.perf_counter() - t0

        assert batched == reference, "engines diverged on the benchmark workload"
        speedup = reference_s / batched_s

        _record(
            "simulator",
            {
                "topology": "Dragonfly(8,4,4)",
                "packets": setup.total_packets,
                "packet_hops": setup.total_hops,
                "execution_time_s": EXECUTION_TIME,
                "dynamic_utilization": round(batched.dynamic_utilization, 4),
                "congested_packet_share": round(batched.congested_packet_share, 4),
                "reference_s": round(reference_s, 3),
                "batched_s": round(batched_s, 3),
                "reference_hops_per_s": round(setup.total_hops / reference_s),
                "batched_hops_per_s": round(setup.total_hops / batched_s),
                "speedup": round(speedup, 2),
                "target": SIM_SPEEDUP_TARGET,
            },
        )
        assert speedup >= SIM_SPEEDUP_TARGET, (
            f"batched kernel {speedup:.1f}x vs reference; "
            f"target {SIM_SPEEDUP_TARGET:.0f}x "
            f"({batched_s:.2f}s vs {reference_s:.2f}s)"
        )


class TestPipelineCacheSpeedup:
    def test_table3_warm_cache_3x(self):
        # Size the incidence region for the full grid (41 configs x 3
        # topologies); traces and matrices already fit their defaults.
        cache.configure(disable_disk=True, memory_items={"incidence": 160})
        cache.clear(memory=True)

        t0 = time.perf_counter()
        cold_rows = build_table3()
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_rows = build_table3()
        warm_s = time.perf_counter() - t0

        cache.configure(memory_items={"incidence": 32})
        cache.clear(memory=True)

        assert len(warm_rows) == len(cold_rows)
        assert [r.label for r in warm_rows] == [r.label for r in cold_rows]
        speedup = cold_s / warm_s

        _record(
            "table3_cache",
            {
                "rows": len(cold_rows),
                "cold_s": round(cold_s, 3),
                "warm_s": round(warm_s, 3),
                "speedup": round(speedup, 2),
                "target": TABLE3_SPEEDUP_TARGET,
            },
        )
        assert speedup >= TABLE3_SPEEDUP_TARGET, (
            f"warm Table-3 pass {speedup:.1f}x vs cold; "
            f"target {TABLE3_SPEEDUP_TARGET:.0f}x ({warm_s:.2f}s vs {cold_s:.2f}s)"
        )
