"""Multi-tenant gates (``pytest -m perf``).

Two assertions measured by :func:`repro.bench.run_tenancy_bench` and
recorded in ``BENCH_tenancy.json`` at the repo root:

1. **Victim-load reduction** — under a hot-spot aggressor flooding 16
   targets of a 1056-node dragonfly, ``interference_aware`` routing primed
   with the victim's own structural link loads must cut the victim's peak
   exposed link load by at least
   :data:`repro.bench.TENANCY_VICTIM_LOAD_REDUCTION_TARGET` versus minimal
   routing.  Both numbers are deterministic route counts, not wall times.
2. **Solo identity** — composing a single job with zero noise must stay
   bit-identical to the solo run (trace, compared simulation observables,
   per-link serve counts, windowed telemetry) on both engines.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    TENANCY_VICTIM_LOAD_REDUCTION_TARGET,
    run_tenancy_bench,
    write_tenancy_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_tenancy.json"


class TestTenancyGates:
    @pytest.fixture(scope="class")
    def bench(self):
        data = run_tenancy_bench()
        write_tenancy_bench(BENCH_PATH, data)
        return data

    def test_workload_is_the_benchmark_regime(self, bench):
        assert bench["scenario"]["packets"] >= 500_000

    def test_interference_aware_reduces_victim_peak_load(self, bench):
        s = bench["summary"]
        assert s["victim_load_reduction"] >= TENANCY_VICTIM_LOAD_REDUCTION_TARGET, (
            f"victim peak load {s['victim_peak_load_minimal']:.0f} (minimal) "
            f"vs {s['victim_peak_load_aware']:.0f} (interference_aware): "
            f"{s['victim_load_reduction']}x, "
            f"target >= {TENANCY_VICTIM_LOAD_REDUCTION_TARGET}x"
        )

    def test_composed_single_job_bit_identical(self, bench):
        assert bench["identity"]["trace_identical"]
        for engine, checks in bench["identity"]["engines"].items():
            assert checks["results_equal"], engine
            assert checks["serve_counts_equal"], engine
            assert checks["telemetry_equal"], engine
