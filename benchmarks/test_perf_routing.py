"""Performance benchmark of the routing policy engines.

Run with ``pytest -m perf benchmarks/test_perf_routing.py``.  Re-runs the
``repro bench routing`` measurement — one 100k-pair batch per policy on the
paper's 1728-rank torus / fat tree / dragonfly — and asserts *ratios only*
(robust to machine speed): every policy's geomean slowdown over minimal
routing stays under the ceiling, and the incidence cache's warm/cold
speedup clears its floor.  The ceiling is deliberately loose — UGAL's
chunked greedy pass is inherently ~10-50x a closed-form minimal batch —
and exists to catch accidental quadratic blowups, not to tune constants.

Results are recorded in ``BENCH_routing.json`` at the repo root.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import (
    CACHE_SPEEDUP_TARGET,
    ROUTING_SLOWDOWN_CEILING,
    run_routing_bench,
    write_routing_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_routing.json"


class TestRoutingThroughput:
    def test_slowdown_ceiling_and_cache_speedup(self):
        data = run_routing_bench(ranks=1728, pairs=100_000)
        write_routing_bench(BENCH_PATH, data)

        summary = data["summary"]
        for name, slowdown in summary["slowdown_vs_minimal"].items():
            assert slowdown <= ROUTING_SLOWDOWN_CEILING, (
                f"{name}: geomean {slowdown}x over minimal exceeds "
                f"ceiling {ROUTING_SLOWDOWN_CEILING}x"
            )
        assert summary["cache_speedup"] >= CACHE_SPEEDUP_TARGET, summary
