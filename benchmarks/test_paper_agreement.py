"""Benchmark: aggregate paper-vs-measured agreement over all 351 cells.

The machine-checkable version of EXPERIMENTS.md: joins every measured
Table-3 cell against the published value and asserts the aggregate
agreement levels the reproduction claims.
"""

import pytest

from repro.paper.compare import compare_table3, deviation_summary

from _bench_utils import once, write_output


@pytest.fixture(scope="module")
def summary_and_cells(table3_full):
    cells = compare_table3(table3_full)
    return deviation_summary(cells), cells


def test_paper_agreement(benchmark, summary_and_cells):
    summary, cells = once(benchmark, lambda: summary_and_cells)
    lines = ["Paper-vs-measured agreement (Table 3, all cells)", "-" * 52]
    lines += summary.lines()
    lines.append("")
    lines.append("cells outside 3x:")
    for cell in cells:
        ok = cell.within_factor(3.0)
        if ok is False:
            lines.append(
                f"  {cell.label:<28} {cell.column:<24} {cell.ratio:6.2f}x"
            )
    write_output("paper_agreement.txt", "\n".join(lines))
    assert summary.comparable_cells > 300


def test_agreement_levels(summary_and_cells):
    summary, _ = summary_and_cells
    assert summary.within_2x >= 0.85 * summary.comparable_cells
    assert summary.within_3x >= 0.93 * summary.comparable_cells
    assert 0.6 <= summary.geometric_mean_ratio <= 1.4


def test_all_na_cells_match(table3_full):
    """Every N/A in the paper is N/A in the reproduction and vice versa."""
    from repro.paper.values import TABLE3

    for row in table3_full:
        m = row.metrics
        paper = TABLE3[(m.app, m.num_ranks, m.variant)]
        assert (paper.peers is None) == (not m.has_p2p), m.label
