"""Benchmark: regenerate Table 3 — the paper's central result.

Runs all 41 configurations through the full pipeline (generate trace →
traffic matrices → MPI-level metrics → three topology models) and compares
the shape against the paper's published rows.
"""

import math

import pytest

from repro.analysis.tables import build_table3, render_table3

from _bench_utils import once, write_output

# paper Table 3 (subset of columns): peers, dist90, sel90,
# avg hops (torus, fattree, dragonfly)
PAPER = {
    "AMG@8": (7, 3.7, 2.8, 1.57, 2.00, 2.83),
    "AMG@27": (26, 8.7, 4.2, 1.74, 2.00, 4.01),
    "AMG@216": (127, 35.8, 5.2, 2.36, 3.41, 4.14),
    "AMG@1728": (293, 143.8, 5.6, 2.62, 3.62, 4.28),
    "AMR_Miniapp@64": (39, 27.1, 8.3, 2.93, 3.20, 4.19),
    "AMR_Miniapp@1728": (490, 348.3, 13.0, 8.97, 4.86, 4.74),
    "BigFFT@9": (None, None, None, 1.56, 1.78, 2.91),
    "BigFFT@100": (None, None, None, 3.40, 3.52, 4.36),
    "BigFFT@1024": (None, None, None, 8.00, 4.35, 4.69),
    "Boxlib_CNS@64": (63, 35.1, 5.7, 2.99, 3.23, 4.23),
    "Boxlib_CNS@256": (255, 109.2, 5.4, 4.93, 3.75, 4.49),
    "Boxlib_CNS@1024": (1023, 661.5, 20.8, 7.97, 4.35, 4.68),
    "Boxlib_MultiGrid_C@64": (26, 27.1, 4.4, 2.92, 3.19, 4.19),
    "Boxlib_MultiGrid_C@1024": (26, 109.1, 4.9, 7.96, 4.33, 4.67),
    "MOCFE@64": (12, 51.3, 8.9, 2.96, 3.28, 4.24),
    "MOCFE@1024": (20, 771.8, 13.3, 7.98, 4.36, 4.69),
    "Nekbone@64": (27, 15.8, 4.8, 2.92, 3.25, 4.24),
    "CrystalRouter@10": (4, 6.4, 3.0, 1.74, 2.00, 3.18),
    "CrystalRouter@1000": (11, 334.3, 8.9, 4.69, 3.26, 3.82),
    "CMC_2D@64": (None, None, None, 3.00, 3.28, 4.25),
    "CMC_2D@1024": (None, None, None, 8.00, 4.36, 4.69),
    "LULESH@64": (26, 15.7, 4.5, 2.70, 3.17, 4.18),
    "FillBoundary@125": (26, 42.3, 4.8, 3.27, 3.32, 4.13),
    "MiniFE@144": (22, 31.5, 4.6, 3.97, 3.62, 4.40),
    "MultiGrid_C@125": (22, 59.7, 5.5, 3.52, 3.57, 4.33),
    "PARTISN@168": (167, 13.8, 3.4, 2.70, 3.04, 3.88),
    "SNAP@168": (48, 139.1, 9.8, 3.85, 3.74, 4.41),
}


@pytest.fixture(scope="module")
def rows(table3_by_label):
    return table3_by_label


def test_table3_full(benchmark, table3_full):
    rows = once(benchmark, lambda: table3_full)
    write_output("table3.txt", render_table3(rows))
    assert len(rows) == 41


def test_mpi_level_metrics_within_bands(rows):
    """Peers / rank distance / selectivity within 2.2x of the paper."""
    failures = []
    for label, (peers_e, dist_e, sel_e, *_rest) in PAPER.items():
        m = rows[label].metrics
        if peers_e is None:
            if m.has_p2p:
                failures.append(f"{label}: expected N/A row")
            continue
        if not (peers_e / 2.2 <= m.peers <= peers_e * 2.2):
            failures.append(f"{label}: peers {m.peers} vs {peers_e}")
        if not (dist_e / 2.2 <= m.rank_distance_90 <= dist_e * 2.2):
            failures.append(f"{label}: dist {m.rank_distance_90:.1f} vs {dist_e}")
        if not (sel_e / 2.2 <= m.selectivity_90 <= sel_e * 2.2):
            failures.append(f"{label}: sel {m.selectivity_90:.1f} vs {sel_e}")
    assert not failures, "\n".join(failures)


def test_scattered_and_collective_hop_averages_close(rows):
    """For non-stencil traffic (uniform or scattered) the hop averages are
    nearly exact; stencil apps are packet-mix sensitive (EXPERIMENTS.md)."""
    tight = ["BigFFT@9", "BigFFT@100", "CMC_2D@64", "CMC_2D@1024", "MOCFE@64"]
    for label in tight:
        _, _, _, torus_e, ft_e, df_e = PAPER[label]
        net = rows[label].network
        assert net["torus3d"].avg_hops == pytest.approx(torus_e, rel=0.05), label
        assert net["dragonfly"].avg_hops == pytest.approx(df_e, rel=0.05), label


# Stencil-class workloads whose paper torus averages sit near the uniform
# mean even though their own MPI-level locality says the stencil is aligned
# with the rank numbering.  Our model follows the traces' own locality and
# produces much lower torus averages — see EXPERIMENTS.md ("known
# deviations") for the analysis.  Fat-tree and dragonfly averages still
# check for these workloads.
STENCIL_TORUS_DEVIATION = {
    "LULESH@64", "MiniFE@144", "MultiGrid_C@125", "Nekbone@64",
    "AMG@216", "AMG@1728", "FillBoundary@125",
}


def test_hop_averages_within_factor_two(rows):
    """Every topology/config hop average within ~2.6x of the paper, except
    the documented stencil-alignment torus deviation."""
    failures = []
    for label, (_, _, _, torus_e, ft_e, df_e) in PAPER.items():
        net = rows[label].network
        for kind, expected in (
            ("torus3d", torus_e), ("fattree", ft_e), ("dragonfly", df_e)
        ):
            if kind == "torus3d" and label in STENCIL_TORUS_DEVIATION:
                continue
            got = net[kind].avg_hops
            if not (expected / 2.6 <= got <= expected * 2.6):
                failures.append(f"{label}/{kind}: {got:.2f} vs {expected}")
    assert not failures, "\n".join(failures)


def test_stencil_torus_deviation_is_downward(rows):
    """The documented deviation always errs toward *fewer* torus hops —
    consistent with the traces' own rank locality."""
    for label in STENCIL_TORUS_DEVIATION:
        torus_e = PAPER[label][3]
        assert rows[label].network["torus3d"].avg_hops < torus_e * 1.7, label


def test_packet_hops_magnitudes(rows):
    """Packet hops grow from ~1e3 (AMG@8) to ~1e10 (BigFFT@1024), as in the
    paper's Table 3."""
    assert rows["AMG@8"].network["torus3d"].packet_hops < 1e5
    assert rows["BigFFT@1024"].network["torus3d"].packet_hops > 1e9
    assert rows["AMR_Miniapp@1728"].network["torus3d"].packet_hops > 1e7


def test_fat_tree_bounded_hops(rows):
    """Paper: fat-tree averages stay below ~5 at every scale."""
    for label, row in rows.items():
        assert row.network["fattree"].avg_hops <= 6.0, label


def test_dragonfly_bounded_by_diameter(rows):
    for label, row in rows.items():
        assert row.network["dragonfly"].avg_hops <= 5.0, label
