"""Ablation: dragonfly group size (the paper's §7 diagnosis).

The paper blames the dragonfly's poor locality exploitation on the small
group size of the standard a = 2h = 2p configuration: most traffic leaves
the group, so nearly every message pays for a global link.  This ablation
scales (a, h, p) for a fixed workload and confirms the diagnosis: larger
groups keep more traffic local and cut the average hop count.
"""

import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.model.engine import analyze_network
from repro.topology.dragonfly import Dragonfly

from _bench_utils import once, write_output

CONFIGS = [(4, 2, 2), (6, 3, 3), (8, 4, 4), (10, 5, 5), (12, 6, 6)]


def sweep(app, ranks):
    trace = generate_trace(app, ranks)
    matrix = matrix_from_trace(trace)
    out = {}
    for ahp in CONFIGS:
        df = Dragonfly(*ahp)
        if df.num_nodes < ranks:
            continue
        out[ahp] = analyze_network(
            matrix, df, execution_time=trace.meta.execution_time
        )
    return out


@pytest.fixture(scope="module")
def results():
    return sweep("LULESH", 64)


def test_ablation_dragonfly(benchmark, results):
    data = once(benchmark, lambda: results)
    lines = [
        f"{'(a,h,p)':<12} {'group':>6} {'nodes':>6} {'avg hops':>9} {'global%':>8}"
    ]
    for ahp, r in data.items():
        a, h, p = ahp
        lines.append(
            f"{str(ahp):<12} {a * p:>6} {(a * h + 1) * a * p:>6} "
            f"{r.avg_hops:>9.2f} {100 * (r.global_link_packet_share or 0):>7.1f}%"
        )
    write_output("ablation_dragonfly.txt", "\n".join(lines))
    assert len(data) >= 4


def test_larger_groups_reduce_global_share(results):
    shares = [
        r.global_link_packet_share for _, r in sorted(results.items())
    ]
    assert shares[0] is not None
    assert shares[-1] < shares[0]


def test_larger_groups_reduce_avg_hops(results):
    hops = [r.avg_hops for _, r in sorted(results.items())]
    assert hops[-1] < hops[0]


def test_standard_config_mostly_global(results):
    """With (4,2,2) groups of 8, a 64-rank job spans 8 groups: most
    packets cross groups — the paper's diagnosis."""
    standard = results[(4, 2, 2)]
    assert standard.global_link_packet_share > 0.5
