"""Benchmark: regenerate Table 4 (rank locality by dimensionality)."""

import pytest

from repro.analysis.tables import build_table4, render_table4

from _bench_utils import once, write_output

# paper Table 4: (1D, 2D, 3D) locality percentages
PAPER = {
    ("AMG", 216): (3, 17, 100),
    ("AMG", 1728): (1, 8, 100),
    ("Boxlib_CNS", 64): (3, 13, 21),
    ("Boxlib_CNS", 256): (1, 8, 13),
    ("Boxlib_CNS", 1024): (0, 3, 7),
    ("LULESH", 64): (6, 24, 100),
    ("LULESH", 512): (2, 6, 100),
    ("MultiGrid_C", 125): (2, 6, 17),
    ("MultiGrid_C", 1000): (0, 3, 9),
    ("PARTISN", 168): (7, 100, 22),
}


@pytest.fixture(scope="module")
def rows():
    return {(r.app, r.ranks): r for r in build_table4()}


def test_table4_full(benchmark):
    rows = once(benchmark, build_table4)
    write_output("table4.txt", render_table4(rows))
    assert len(rows) == len(PAPER)


def test_dimensional_classes_match_paper(rows):
    """The structural claims: which dimension each app 'snaps' to."""
    # 3D apps: AMG and LULESH hit 100% at 3D
    for key in [("AMG", 216), ("AMG", 1728), ("LULESH", 64), ("LULESH", 512)]:
        assert rows[key].locality[3] == pytest.approx(1.0), key
    # 2D app: PARTISN hits 100% at 2D but not 3D
    partisn = rows[("PARTISN", 168)]
    assert partisn.locality[2] == pytest.approx(1.0)
    assert partisn.locality[3] < 0.6
    # CNS has no dimensional structure: never above 50%
    for ranks in (64, 256, 1024):
        assert max(rows[("Boxlib_CNS", ranks)].locality.values()) < 0.5, ranks


def test_locality_improves_with_dimension(rows):
    """Paper: locality improves with dimension count until the workload's
    intrinsic dimensionality is reached (PARTISN peaks at 2D and drops
    back at 3D — 100% -> 22% in the paper's Table 4 as well)."""
    for key, row in rows.items():
        loc = row.locality
        assert loc[1] <= loc[2] + 0.02, key
        if loc[2] < 0.999:  # beyond an exact peak the metric may dip
            assert loc[2] <= loc[3] + 0.02, key


def test_1d_locality_decreases_with_scale(rows):
    """Within an app, more ranks means lower 1D locality (paper §5.1)."""
    for app, small, large in [
        ("AMG", 216, 1728),
        ("Boxlib_CNS", 64, 1024),
        ("LULESH", 64, 512),
        ("MultiGrid_C", 125, 1000),
    ]:
        assert rows[(app, large)].locality[1] <= rows[(app, small)].locality[1]


# MultiGrid_C's published selectivity (~5.5) and 3D locality (9-17%) are in
# tension: few dominant partners cannot simultaneously sit at Manhattan
# distance ~6 on a balanced grid.  The generator prioritizes the
# selectivity/peers/1D-distance columns, leaving its 3D locality high.
# See EXPERIMENTS.md.
DEVIATING_CELLS = {("MultiGrid_C", 125, 3), ("MultiGrid_C", 1000, 3)}


def test_values_within_bands(rows):
    """Each cell within a generous band of the paper (percentage points),
    except the documented MultiGrid_C 3D tension."""
    failures = []
    for key, expected in PAPER.items():
        got = rows[key].locality
        for dim, exp_pct in zip((1, 2, 3), expected):
            if (key[0], key[1], dim) in DEVIATING_CELLS:
                continue
            got_pct = 100 * got[dim]
            if abs(got_pct - exp_pct) > max(12, 0.8 * exp_pct):
                failures.append(f"{key} {dim}D: {got_pct:.0f}% vs {exp_pct}%")
    assert not failures, "\n".join(failures)
