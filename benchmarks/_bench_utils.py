"""Benchmark helper utilities (imported by the benchmark modules)."""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def write_output(name: str, text: str) -> Path:
    """Write a rendered table/figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy benchmark exactly once (no warmup rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
