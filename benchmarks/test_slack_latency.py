"""Benchmarks: the §7 follow-ups — bandwidth slack and latency translation.

The paper closes by proposing (a) operating links at load-matched
bandwidths ("super-linearly decrease power consumption") and (b) studying
per-message slack.  These benchmarks quantify both over the workload set.
"""

import numpy as np
import pytest

from repro.apps.registry import generate_trace, iter_configurations
from repro.comm.matrix import matrix_from_trace
from repro.model.latency import LatencyModel
from repro.model.slack import bandwidth_slack
from repro.topology.configs import config_for

from _bench_utils import once, write_output

CAP = 300  # bandwidth-slack sweep is per-link; keep the sweep moderate


def slack_rows():
    rows = {}
    for app, point in iter_configurations(max_ranks=CAP):
        if point.variant:
            continue
        trace = app.generate(point.ranks)
        matrix = matrix_from_trace(trace)
        topo = config_for(point.ranks).build_torus()
        report = bandwidth_slack(
            matrix, topo, execution_time=trace.meta.execution_time
        )
        rows[f"{app.name}@{point.ranks}"] = report
    return rows


@pytest.fixture(scope="module")
def slack(
):
    return slack_rows()


def test_slack_sweep(benchmark, slack):
    data = once(benchmark, lambda: slack)
    lines = [
        f"{'workload':<24} {'links':>6} {'min slack':>10} {'median':>10} "
        f"{'uniform sav%':>12} {'per-link sav%':>13}"
    ]
    for label, r in data.items():
        lines.append(
            f"{label:<24} {r.num_links:>6} {r.min_slack:>10.1f} "
            f"{r.median_slack:>10.1f} {100 * r.uniform_power_saving():>11.1f}% "
            f"{100 * r.per_link_power_saving():>12.1f}%"
        )
    write_output("slack.txt", "\n".join(lines))


def test_most_workloads_allow_deep_slowdown(slack):
    """<1% utilization (paper §6.3) implies >100x bandwidth slack on the
    busiest link for most workloads."""
    deep = sum(1 for r in slack.values() if r.min_slack > 10.0)
    assert deep >= 0.7 * len(slack)


def test_bigfft_has_the_least_slack(slack):
    fft = [r.min_slack for label, r in slack.items() if label.startswith("BigFFT")]
    others = [
        r.min_slack for label, r in slack.items() if not label.startswith("BigFFT")
    ]
    assert max(fft) < np.median(others)


def test_per_link_provisioning_beats_uniform(slack):
    for label, r in slack.items():
        if r.num_links:
            assert r.per_link_power_saving() >= r.uniform_power_saving() - 1e-9, label


def test_latency_translation(benchmark):
    """Packet hops translate to latency: mapping quality shows up directly
    in mean message latency (the paper's motivation for the hop metrics)."""

    def run():
        trace = generate_trace("LULESH", 64)
        matrix = matrix_from_trace(trace)
        topo = config_for(64).build_torus()
        model = LatencyModel()
        aligned = model.report(matrix, topo)
        scrambled = model.report(
            matrix.remapped(np.random.default_rng(0).permutation(64)), topo
        )
        return aligned, scrambled

    aligned, scrambled = once(benchmark, run)
    write_output(
        "latency.txt",
        f"LULESH@64 on (4,4,4) torus\n"
        f"aligned placement:   mean {aligned.mean_message_latency_us:.2f} us, "
        f"p99 {1e6 * aligned.p99_message_latency_s:.2f} us\n"
        f"scrambled placement: mean {scrambled.mean_message_latency_us:.2f} us, "
        f"p99 {1e6 * scrambled.p99_message_latency_s:.2f} us",
    )
    assert scrambled.mean_message_latency_s > aligned.mean_message_latency_s
