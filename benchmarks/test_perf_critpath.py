"""Critical-path gates (``pytest -m perf``).

Two assertions measured by :func:`repro.bench.run_critpath_bench` and
recorded in ``BENCH_critpath.json`` at the repo root:

1. **Matcher speedup** — the vectorized channel-sort FIFO matcher must
   beat the pinned per-event oracle by at least
   :data:`repro.bench.CRITPATH_MATCH_SPEEDUP_TARGET` on the
   exactly-expanded 1728-rank AMG trace, while producing a bit-identical
   (send, recv, bytes) edge set.  Identity is deterministic; the speedup
   is a same-machine ratio, never a wall time compared across machines.
2. **Sensitivity cross-check** — on every registry app's smallest
   configuration, the algebraic dT/dL (L-terms on the critical path) must
   agree with a forward finite difference within
   :data:`repro.bench.CRITPATH_SENSITIVITY_REL_TOL`.  With the dyadic
   default LogGP parameters the DP is exact arithmetic, so the observed
   disagreement is exactly zero.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import (
    CRITPATH_MATCH_SPEEDUP_TARGET,
    CRITPATH_SENSITIVITY_REL_TOL,
    run_critpath_bench,
    write_critpath_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_critpath.json"


class TestCritpathGates:
    @pytest.fixture(scope="class")
    def bench(self):
        data = run_critpath_bench()
        write_critpath_bench(BENCH_PATH, data)
        return data

    def test_workload_is_the_benchmark_regime(self, bench):
        # The paper's largest AMG configuration, exactly expanded.
        assert bench["matcher"]["events"] >= 5_000_000
        assert bench["matcher"]["pairs"] >= 2_500_000

    def test_matcher_edge_sets_bit_identical(self, bench):
        assert bench["summary"]["edges_identical"]

    def test_matcher_speedup(self, bench):
        s = bench["summary"]
        assert s["match_speedup"] >= CRITPATH_MATCH_SPEEDUP_TARGET, (
            f"vectorized matcher {bench['matcher']['vectorized_seconds']}s "
            f"vs oracle {bench['matcher']['oracle_seconds']}s: "
            f"{s['match_speedup']}x, "
            f"target >= {CRITPATH_MATCH_SPEEDUP_TARGET}x"
        )

    def test_sensitivity_matches_finite_difference(self, bench):
        s = bench["summary"]
        worst = max(
            bench["sensitivity"]["apps"], key=lambda a: a["rel_err"]
        )
        assert s["sensitivity_max_rel_err"] <= CRITPATH_SENSITIVITY_REL_TOL, (
            f"{worst['app']}@{worst['ranks']}: algebraic {worst['l_terms']} "
            f"vs finite difference {worst['fd_sensitivity']} "
            f"(rel err {worst['rel_err']:.3g})"
        )

    def test_every_registry_app_covered(self, bench):
        from repro.apps.registry import APPS

        covered = {a["app"] for a in bench["sensitivity"]["apps"]}
        assert covered == set(APPS)
