"""Telemetry overhead benchmarks (``pytest -m perf``).

Two calibrated ratio assertions on the 500k-packet dragonfly workload of
``test_perf_sim.py``, both measured by :func:`repro.bench.run_telemetry_bench`
(median per-round ratio over six rotated-order rounds — an estimator
built to cancel machine-load spikes and slot bias; all over one shared
prepared setup):

1. a **disabled** collector (the ``NullCollector``) must cost nothing —
   the engines guard every recording site with one attribute check;
2. full **windowed collection** must stay a small fraction of the batched
   kernel's runtime (the buffers are per-window array appends; the real
   reduction work happens once, in ``finalize``).

Measured numbers (plus the adversarial minimal-vs-adaptive congestion
comparison) are recorded in ``BENCH_telemetry.json`` at the repo root.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    TELEMETRY_NULL_OVERHEAD_CEILING,
    TELEMETRY_WINDOWED_OVERHEAD_CEILING,
    run_telemetry_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


class TestTelemetryOverhead:
    @pytest.fixture(scope="class")
    def bench(self):
        data = run_telemetry_bench()
        BENCH_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        return data

    def test_workload_is_the_benchmark_regime(self, bench):
        assert bench["overhead"]["packets"] >= 500_000

    def test_null_collector_is_free(self, bench):
        o = bench["overhead"]
        assert o["null_overhead"] <= TELEMETRY_NULL_OVERHEAD_CEILING, (
            f"null collector {o['null_overhead']:.3f}x vs bare kernel; "
            f"ceiling {TELEMETRY_NULL_OVERHEAD_CEILING}x "
            f"({o['null_s']:.3f}s vs {o['bare_s']:.3f}s)"
        )

    def test_windowed_collection_overhead_bounded(self, bench):
        o = bench["overhead"]
        assert o["windowed_overhead"] <= TELEMETRY_WINDOWED_OVERHEAD_CEILING, (
            f"windowed collector {o['windowed_overhead']:.3f}x vs bare "
            f"kernel; ceiling {TELEMETRY_WINDOWED_OVERHEAD_CEILING}x "
            f"({o['windowed_s']:.3f}s vs {o['bare_s']:.3f}s)"
        )

    def test_congestion_story_recorded(self, bench):
        records = {r["routing"]: r for r in bench["congestion"]}
        assert records["ugal"]["longest_region_s"] < (
            records["minimal"]["longest_region_s"]
        )
