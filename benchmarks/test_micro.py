"""Microbenchmarks of the library's hot kernels.

Unlike the table/figure benchmarks (run once, checked for shape), these are
true multi-round timing benchmarks for performance tracking: the vectorized
kernels every analysis is built on.  Regressions here multiply into every
experiment.
"""

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import CommMatrixBuilder, matrix_from_trace
from repro.core.packets import packets_for_bytes_array
from repro.metrics.selectivity import mean_selectivity_curve
from repro.metrics.weighted import weighted_quantile
from repro.model.engine import analyze_network
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus3D

RNG = np.random.default_rng(0)
N_PAIRS = 1_000_000


@pytest.fixture(scope="module")
def torus():
    return Torus3D((12, 12, 12))


@pytest.fixture(scope="module")
def pairs(torus):
    n = torus.num_nodes
    return RNG.integers(0, n, N_PAIRS), RNG.integers(0, n, N_PAIRS)


@pytest.fixture(scope="module")
def lulesh_trace():
    return generate_trace("LULESH", 512)


class TestTopologyKernels:
    def test_torus_hops_1m_pairs(self, benchmark, torus, pairs):
        src, dst = pairs
        result = benchmark(torus.hops_array, src, dst)
        assert result.max() <= torus.diameter

    def test_fattree_hops_1m_pairs(self, benchmark, pairs):
        ft = FatTree(48, 3)
        src, dst = pairs
        result = benchmark(ft.hops_array, src % ft.num_nodes, dst % ft.num_nodes)
        assert result.max() <= 6

    def test_dragonfly_hops_1m_pairs(self, benchmark, pairs):
        df = Dragonfly(10, 5, 5)
        src, dst = pairs
        result = benchmark(df.hops_array, src % df.num_nodes, dst % df.num_nodes)
        assert result.max() <= 5

    def test_torus_route_incidence_100k_pairs(self, benchmark, torus, pairs):
        src, dst = pairs[0][:100_000], pairs[1][:100_000]
        inc = benchmark(torus.route_incidence, src, dst)
        assert inc.num_incidences > 0


class TestTrafficKernels:
    def test_packetization_1m(self, benchmark):
        sizes = RNG.integers(0, 10**6, N_PAIRS)
        result = benchmark(packets_for_bytes_array, sizes)
        assert result.min() >= 1

    def test_matrix_finalize_1m_entries(self, benchmark, pairs):
        src, dst = pairs

        def build():
            b = CommMatrixBuilder(1728)
            b.add_arrays(
                src, dst,
                np.full(N_PAIRS, 1000, dtype=np.int64),
                np.ones(N_PAIRS, dtype=np.int64),
                np.ones(N_PAIRS, dtype=np.int64),
            )
            return b.finalize()

        matrix = benchmark(build)
        assert matrix.total_messages == N_PAIRS

    def test_matrix_from_trace_lulesh512(self, benchmark, lulesh_trace):
        matrix = benchmark(matrix_from_trace, lulesh_trace)
        assert matrix.total_bytes > 0


class TestMetricKernels:
    def test_weighted_quantile_100k(self, benchmark):
        values = RNG.integers(1, 1728, 100_000).astype(float)
        weights = RNG.random(100_000)
        result = benchmark(weighted_quantile, values, weights, 0.9)
        assert 1 <= result <= 1728

    def test_mean_selectivity_curve_lulesh512(self, benchmark, lulesh_trace):
        matrix = matrix_from_trace(lulesh_trace, include_collectives=False)
        curve = benchmark(mean_selectivity_curve, matrix)
        assert curve[-1] == pytest.approx(1.0)


class TestEnginePipeline:
    def test_analyze_network_lulesh512(self, benchmark, lulesh_trace):
        matrix = matrix_from_trace(lulesh_trace)
        topo = Torus3D((8, 8, 8))
        result = benchmark(
            analyze_network, matrix, topo,
            execution_time=lulesh_trace.meta.execution_time,
        )
        assert result.packet_hops > 0
