"""Benchmark: regenerate Table 2 (topology configurations at scale)."""

import pytest

from repro.analysis.tables import build_table2, render_table2
from repro.topology.configs import TABLE2

from _bench_utils import once, write_output

# the paper's node-count columns, verbatim
PAPER_NODES = {
    8: (8, 48, 72),
    9: (12, 48, 72),
    64: (64, 576, 72),
    100: (100, 576, 342),
    512: (512, 576, 1056),
    1000: (1000, 13824, 1056),
    1152: (1152, 13824, 2550),
    1728: (1728, 13824, 2550),
}


def test_table2(benchmark):
    configs = once(benchmark, build_table2)
    write_output("table2.txt", render_table2(configs))
    assert len(configs) == 17


@pytest.mark.parametrize("size", sorted(PAPER_NODES))
def test_node_counts_verbatim(size):
    torus_n, ft_n, df_n = PAPER_NODES[size]
    cfg = TABLE2[size]
    assert cfg.torus_nodes == torus_n
    assert cfg.fat_tree_nodes == ft_n
    assert cfg.dragonfly_nodes == df_n


def test_every_config_fits_its_size():
    for size, cfg in TABLE2.items():
        assert cfg.torus_nodes >= size
        assert cfg.fat_tree_nodes >= size
        assert cfg.dragonfly_nodes >= size
