"""Performance benchmark of the columnar trace front-end.

Run with ``pytest -m perf benchmarks/test_perf_pipeline.py``.  Re-runs the
``repro bench pipeline`` measurement — cold ``generate -> matrix`` on every
study configuration with >= 1000 ranks, legacy per-event path vs the
columnar EventBlock path — and asserts the *geometric-mean* speedup ratio
(robust to machine speed).  The geomean is the headline because the floor
is set by configurations whose legacy path is already array-based (the
all-collective apps, where both paths share the same matrix-finalize cost);
the heavyweight configs (AMG@1728) individually clear the target.

Results are recorded in ``BENCH_pipeline.json`` at the repo root.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import (
    FRONT_END_TARGET,
    run_pipeline_bench,
    write_pipeline_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

#: The vectorized mapping kernels carry their own floor: they replace
#: per-rank Python loops outright, so no config should fall below this.
MAPPING_TARGET = 3.0


class TestFrontEndSpeedup:
    def test_columnar_front_end_geomean_5x(self):
        data = run_pipeline_bench(min_ranks=1000, mapping=True)
        write_pipeline_bench(BENCH_PATH, data)

        summary = data["summary"]
        assert summary["configs"] >= 10
        geomean = summary["geomean_front_end_speedup"]
        assert geomean >= FRONT_END_TARGET, (
            f"columnar front-end geomean {geomean:.1f}x vs legacy; "
            f"target {FRONT_END_TARGET:.0f}x "
            f"(min {summary['min_front_end_speedup']:.1f}x across "
            f"{summary['configs']} configs)"
        )

        mapping = data["mapping"]
        assert mapping["greedy_speedup"] >= MAPPING_TARGET, mapping
        assert mapping["refine_speedup"] >= MAPPING_TARGET, mapping
