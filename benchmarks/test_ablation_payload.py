"""Ablation: packet payload size (the paper fixes 4 kB).

Packet hops scale inversely with payload for large messages, while
small-message workloads are insensitive (every message already fits one
packet) — this bounds how much the 4 kB choice matters per workload class.
"""

import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.model.engine import analyze_network
from repro.topology.configs import config_for

from _bench_utils import once, write_output

PAYLOADS = (256, 1024, 4096, 16384, 65536)


def sweep(app, ranks):
    trace = generate_trace(app, ranks)
    topo = config_for(ranks).build_torus()
    out = {}
    for payload in PAYLOADS:
        matrix = matrix_from_trace(trace, payload=payload)
        r = analyze_network(
            matrix, topo, execution_time=trace.meta.execution_time, payload=payload
        )
        out[payload] = r
    return out


@pytest.fixture(scope="module")
def results():
    return {
        "LULESH@64": sweep("LULESH", 64),  # large messages
        "CMC_2D@64": sweep("CMC_2D", 64),  # tiny messages
    }


def test_ablation_payload(benchmark, results):
    data = once(benchmark, lambda: results)
    lines = [f"{'workload':<12} " + " ".join(f"{p:>10}B" for p in PAYLOADS)]
    for label, by_payload in data.items():
        cells = " ".join(
            f"{by_payload[p].packet_hops:>10.2e}" for p in PAYLOADS
        )
        lines.append(f"{label:<12} {cells}")
    write_output("ablation_payload.txt", "\n".join(lines))


def test_large_messages_scale_inversely(results):
    lulesh = results["LULESH@64"]
    assert lulesh[256].packet_hops > 8 * lulesh[4096].packet_hops
    assert lulesh[4096].packet_hops > 2 * lulesh[65536].packet_hops


def test_small_messages_insensitive(results):
    cmc = results["CMC_2D@64"]
    # CMC's per-call payloads are tiny: halving the MTU changes little
    assert cmc[1024].packet_hops <= 4 * cmc[65536].packet_hops


def test_average_hops_invariant_to_payload(results):
    """Payload changes packet counts, not routes: the byte-weighted route
    mix (hence avg hops for uniform-size channels) moves only mildly."""
    for label, by_payload in results.items():
        hops = [by_payload[p].avg_hops for p in PAYLOADS]
        assert max(hops) - min(hops) < 1.2, label
