"""Ablation: torus wrap-around links (paper §2.2.2).

The paper credits the torus's wrap-around links with reducing the diameter
("every dimension can be seen as a ring instead of a chain").  This
ablation removes them (Mesh3D) and measures what they buy per workload:
little for aligned stencils (their traffic never reaches the boundary
wrap), a lot for scattered and collective-rooted traffic.
"""

import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.model.engine import analyze_network
from repro.topology.configs import config_for
from repro.topology.mesh import Mesh3D

from _bench_utils import once, write_output

CASES = [
    ("LULESH", 64),  # aligned stencil
    ("MOCFE", 64),  # scattered
    ("CMC_2D", 64),  # rooted collectives
    ("BigFFT", 100),  # uniform
    ("AMG", 216),
]


def compare(app, ranks):
    trace = generate_trace(app, ranks)
    matrix = matrix_from_trace(trace)
    dims = config_for(ranks).torus_dims
    t = trace.meta.execution_time
    torus = analyze_network(
        matrix, config_for(ranks).build_torus(), execution_time=t
    )
    mesh = analyze_network(matrix, Mesh3D(dims), execution_time=t)
    return torus, mesh


@pytest.fixture(scope="module")
def results():
    return {f"{app}@{ranks}": compare(app, ranks) for app, ranks in CASES}


def test_ablation_mesh(benchmark, results):
    data = once(benchmark, lambda: results)
    lines = [
        f"{'workload':<16} {'torus hops':>11} {'mesh hops':>10} {'mesh/torus':>11}"
    ]
    for label, (torus, mesh) in data.items():
        ratio = mesh.avg_hops / torus.avg_hops if torus.avg_hops else 1.0
        lines.append(
            f"{label:<16} {torus.avg_hops:>11.2f} {mesh.avg_hops:>10.2f} "
            f"{ratio:>10.2f}x"
        )
    write_output("ablation_mesh.txt", "\n".join(lines))


def test_mesh_never_beats_torus(results):
    for label, (torus, mesh) in results.items():
        assert mesh.avg_hops >= torus.avg_hops - 1e-9, label


def test_wraparound_matters_for_uniform_traffic(results):
    """Uniform/scattered traffic reaches the boundaries: wrap links cut the
    average by ~1/3 (ring mean d/4 vs chain mean d/3)."""
    for label in ("BigFFT@100", "MOCFE@64", "CMC_2D@64"):
        torus, mesh = results[label]
        assert mesh.avg_hops > 1.15 * torus.avg_hops, label


def test_wraparound_irrelevant_for_aligned_stencils(results):
    """Face-neighbour traffic rarely crosses a boundary: removing the wrap
    links barely changes the average."""
    torus, mesh = results["LULESH@64"]
    assert mesh.avg_hops < 1.2 * torus.avg_hops
