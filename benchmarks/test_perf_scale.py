"""Memory gate for the out-of-core streaming pipeline.

Run with ``pytest -m perf benchmarks/test_perf_scale.py``.  Re-runs the
``repro bench scale`` measurement — a 262,144-rank ``ScaleHalo3D`` trace
streamed through chunked generation, incremental traffic-matrix
accumulation, and the §4.1.1 locality metrics, inside a fresh subprocess
whose address space is capped with ``resource.setrlimit`` — and asserts
the measured peak RSS stays under the fixed 2 GB budget.  The gate is a
*memory ratio*, portable across machines in a way wall times are not.

Results are recorded in ``BENCH_scale.json`` at the repo root.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import (
    SCALE_RANKS,
    SCALE_RSS_BUDGET_MB,
    run_scale_bench,
    write_scale_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: Hard address-space cap for the measured subprocess: twice the RSS
#: budget (interpreter text, guard pages, and allocator slack live in
#: virtual memory that never becomes resident).
RLIMIT_GB = 4.0


class TestScaleStreaming:
    def test_quarter_million_ranks_within_rss_budget(self):
        data = run_scale_bench(
            ranks=SCALE_RANKS,
            budget_mb=SCALE_RSS_BUDGET_MB,
            rlimit_gb=RLIMIT_GB,
        )
        write_scale_bench(BENCH_PATH, data)

        summary = data["summary"]
        scale = data["scale"]
        assert scale["ranks"] == SCALE_RANKS
        assert scale["rows"] > SCALE_RANKS  # 6-stencil halo + allreduce
        assert scale["pairs"] > SCALE_RANKS
        ratio = summary["rss_ratio"]
        assert ratio is not None, "peak RSS not measurable on this platform"
        assert ratio <= summary["rss_ratio_ceiling"], (
            f"streaming pipeline peaked at {summary['peak_rss_mb']:.0f} MB "
            f"RSS at {SCALE_RANKS} ranks; budget {SCALE_RSS_BUDGET_MB:.0f} MB "
            f"(ratio {ratio:.3f}, ceiling {summary['rss_ratio_ceiling']})"
        )
