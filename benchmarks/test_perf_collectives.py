"""Collective-engine gates (``pytest -m perf``).

Two assertions measured by :func:`repro.bench.run_collectives_bench` and
recorded in ``BENCH_collectives.json`` at the repo root:

1. **Flat identity** — the flat engine (the paper's collective->p2p
   expansion) must stay bit-identical to the parameterless default on
   every registry app's smallest configuration, and identical again when
   the matrix is rebuilt through the independent per-event expansion path
   (``iter_send_groups`` feeding ``CommMatrixBuilder.add_group``).
   Deterministic, no wall times involved.
2. **Tree locality delta** — on the collective-heavy
   :data:`repro.bench.COLLECTIVES_DELTA_WORKLOAD` the binomial engine
   must inflate expanded collective bytes by at least
   :data:`repro.bench.COLLECTIVES_BYTES_RATIO_FLOOR` over flat while
   moving torus average hops by at least
   :data:`repro.bench.COLLECTIVES_HOPS_DELTA_FLOOR` relative — the
   measurable locality difference the engine axis exists to study.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import (
    COLLECTIVES_BYTES_RATIO_FLOOR,
    COLLECTIVES_HOPS_DELTA_FLOOR,
    run_collectives_bench,
    write_collectives_bench,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_collectives.json"


class TestCollectiveGates:
    @pytest.fixture(scope="class")
    def bench(self):
        data = run_collectives_bench()
        write_collectives_bench(BENCH_PATH, data)
        return data

    def test_flat_identity_on_every_app(self, bench):
        broken = [
            a["workload"]
            for a in bench["identity"]["apps"]
            if not (a["default_identical"] and a["per_event_identical"])
        ]
        assert bench["summary"]["flat_identity_ok"], (
            f"flat engine diverged from the pinned default on {broken}"
        )

    def test_every_registry_app_covered(self, bench):
        from repro.apps.registry import APPS

        covered = {a["workload"].split("@")[0] for a in bench["identity"]["apps"]}
        assert covered == set(APPS)

    def test_binomial_bytes_ratio(self, bench):
        s = bench["summary"]
        assert s["bytes_ratio"] >= COLLECTIVES_BYTES_RATIO_FLOOR, (
            f"binomial collective bytes only {s['bytes_ratio']}x flat on "
            f"{bench['delta']['workload']}, "
            f"floor {COLLECTIVES_BYTES_RATIO_FLOOR}x"
        )

    def test_binomial_hops_delta(self, bench):
        s = bench["summary"]
        engines = bench["delta"]["engines"]
        assert s["hops_delta_rel"] >= COLLECTIVES_HOPS_DELTA_FLOOR, (
            f"avg hops {engines['flat']['avg_hops']} -> "
            f"{engines['binomial']['avg_hops']} on "
            f"{bench['delta']['workload']}: relative delta "
            f"{s['hops_delta_rel']} under floor "
            f"{COLLECTIVES_HOPS_DELTA_FLOOR}"
        )
