"""Ablations: dragonfly routing policy and topology hardware cost.

Two §7 remarks quantified:

1. "in practice usually adaptive routing is used in dragonfly networks,
   which often results in even longer paths" — compared via the Valiant
   static surrogate;
2. cost: the dragonfly exists to minimize optical links; the cost table
   shows what each Table-2 configuration pays per attached node.
"""

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.mapping.base import Mapping
from repro.topology.configs import TABLE2
from repro.topology.cost import CostModel, topology_cost

from _bench_utils import once, write_output


def valiant_comparison(app, ranks):
    trace = generate_trace(app, ranks)
    matrix = matrix_from_trace(trace)
    df = TABLE2[ranks].build_dragonfly()
    mapping = Mapping.consecutive(ranks, df.num_nodes)
    src = mapping.node_of(matrix.src)
    dst = mapping.node_of(matrix.dst)
    weights = matrix.packets.astype(np.float64)
    minimal = float((df.hops_array(src, dst) * weights).sum() / weights.sum())
    valiant = float(
        (df.valiant_hops(src, dst, np.random.default_rng(0)) * weights).sum()
        / weights.sum()
    )
    return minimal, valiant


@pytest.fixture(scope="module")
def routing_results():
    return {
        f"{app}@{ranks}": valiant_comparison(app, ranks)
        for app, ranks in [("AMG", 27), ("LULESH", 64), ("MOCFE", 64), ("BigFFT", 100)]
    }


def test_ablation_routing(benchmark, routing_results):
    data = once(benchmark, lambda: routing_results)
    lines = [f"{'workload':<14} {'minimal':>8} {'valiant':>8} {'ratio':>6}"]
    for label, (minimal, valiant) in data.items():
        lines.append(
            f"{label:<14} {minimal:>8.2f} {valiant:>8.2f} {valiant / minimal:>5.2f}x"
        )
    write_output("ablation_routing.txt", "\n".join(lines))


def test_valiant_longer_on_average(routing_results):
    """The paper's remark: non-minimal routing lengthens paths."""
    for label, (minimal, valiant) in routing_results.items():
        assert valiant > minimal, label


def test_valiant_bounded(routing_results):
    for label, (_, valiant) in routing_results.items():
        assert valiant <= 7.0, label  # two globals + detours + endpoints


# ------------------------------------------------------------------ cost


@pytest.fixture(scope="module")
def cost_table():
    model = CostModel()
    rows = {}
    for size in sorted(TABLE2):
        cfg = TABLE2[size]
        rows[size] = {
            "torus3d": topology_cost(cfg.build_torus(), model),
            "fattree": topology_cost(cfg.build_fat_tree(), model),
            "dragonfly": topology_cost(cfg.build_dragonfly(), model),
        }
    return rows


def test_cost_table(benchmark, cost_table):
    data = once(benchmark, lambda: cost_table)
    lines = [
        f"{'size':>6} | {'torus $/node':>12} {'ftree $/node':>13} "
        f"{'dfly $/node':>12} | {'ftree opt%':>10} {'dfly opt%':>10}"
    ]
    for size, row in data.items():
        lines.append(
            f"{size:>6} | {row['torus3d'].cost_per_node:>12.3f} "
            f"{row['fattree'].cost_per_node:>13.3f} "
            f"{row['dragonfly'].cost_per_node:>12.3f} | "
            f"{100 * row['fattree'].optical_share:>9.1f}% "
            f"{100 * row['dragonfly'].optical_share:>9.1f}%"
        )
    write_output("topology_cost.txt", "\n".join(lines))


def test_dragonfly_minimizes_optical_share(cost_table):
    """The dragonfly's design goal: fewer optical links than a multi-stage
    fat tree at comparable scale."""
    for size in (1000, 1024, 1152, 1728):
        row = cost_table[size]
        assert row["dragonfly"].optical_share < row["fattree"].optical_share

    # and in absolute terms per attached node
    big = cost_table[1728]
    dfly_optical_per_node = big["dragonfly"].optical_links / big["dragonfly"].num_nodes
    ftree_optical_per_node = big["fattree"].optical_links / big["fattree"].num_nodes
    assert dfly_optical_per_node < ftree_optical_per_node


def test_torus_has_no_optical_links(cost_table):
    for row in cost_table.values():
        assert row["torus3d"].optical_links == 0


def test_costs_positive_and_scale(cost_table):
    small = cost_table[8]["fattree"].cost
    large = cost_table[1728]["fattree"].cost
    assert 0 < small < large
