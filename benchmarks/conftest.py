"""Shared benchmark fixtures.

The full experiment grid (41 configurations up to 1728 ranks) is expensive
to regenerate, so Table-3 rows are computed once per session and shared
across benchmark files.  Rendered outputs land in ``benchmarks/output/`` so
paper-vs-measured comparisons (EXPERIMENTS.md) can be refreshed from a
single run.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table3Row, build_table3


@pytest.fixture(scope="session")
def table3_full() -> list[Table3Row]:
    """All 41 configurations at full scale — the core dataset."""
    return build_table3()


@pytest.fixture(scope="session")
def table3_by_label(table3_full) -> dict[str, Table3Row]:
    return {row.label: row for row in table3_full}
