"""Benchmark: regenerate Table 1 (application overview) at full scale.

Prints the same columns the paper reports — ranks, execution time, total
volume, p2p/collective split, throughput — for all 41 configurations, and
asserts the calibration against the paper's published aggregates.
"""

import pytest

from repro.analysis.tables import build_table1, render_table1
from repro.apps.registry import iter_configurations

from _bench_utils import once, write_output


@pytest.fixture(scope="module")
def table1_rows():
    return build_table1()


def test_table1_full(benchmark):
    rows = once(benchmark, build_table1)
    text = render_table1(rows)
    write_output("table1.txt", text)
    assert len(rows) == 41


def test_volumes_match_paper_calibration(table1_rows):
    """Every configuration's total volume hits its Table-1 target."""
    targets = {
        (a.name, p.ranks, p.variant): p for a, p in iter_configurations()
    }
    for row in table1_rows:
        s = row.stats
        point = targets[(s.app, s.num_ranks, s.variant)]
        assert s.total_mb == pytest.approx(point.volume_mb, rel=0.02), s.label
        assert s.p2p_share == pytest.approx(point.p2p_share, abs=0.02), s.label


def test_throughput_spans_paper_range(table1_rows):
    """Paper Table 1: throughput spans ~0.02 MB/s (PARTISN) to ~90 GB/s
    (CrystalRouter@1000)."""
    thr = {row.stats.label: row.stats.throughput_mb_per_s for row in table1_rows}
    assert thr["PARTISN@168"] == pytest.approx(0.02, rel=0.1)
    assert thr["CrystalRouter@1000"] == pytest.approx(90491.0, rel=0.1)
    assert min(thr.values()) < 0.1 < 10_000 < max(thr.values())


def test_collective_heavy_apps(table1_rows):
    by_label = {row.stats.label: row.stats for row in table1_rows}
    assert by_label["BigFFT@1024"].collective_share == pytest.approx(1.0)
    assert by_label["CMC_2D@256"].collective_share == pytest.approx(1.0)
    assert by_label["MOCFE@256"].collective_share == pytest.approx(0.945, abs=0.02)
