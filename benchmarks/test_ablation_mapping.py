"""Ablation: consecutive vs optimized rank-to-node mapping.

The paper's discussion (§7): "the low selectivity of most applications
suggests that a significant traffic reduction is possible only by using an
optimized mapping".  This ablation measures that headroom with three
optimizers (heavy-edge greedy, Fiedler ordering, recursive spectral
bisection) on a torus, and produces a more nuanced picture than the paper's
conjecture:

- when the application's rank numbering does **not** match the machine
  (here: a scrambled LULESH, emulating an arbitrary batch-scheduler
  placement), optimized mapping recovers ~30% of the byte-weighted hops;
- scattered-communication apps (MOCFE) gain ~10-15%;
- Boxlib codes whose ranks follow a Morton curve are **already**
  smart-mapped — the space-filling assignment is itself a locality
  optimization, and graph-driven optimizers cannot beat it by much.
"""

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.mapping.base import Mapping
from repro.mapping.optimized import optimize_mapping, weighted_hop_cost
from repro.topology.configs import config_for

from _bench_utils import once, write_output

METHODS = ("greedy", "spectral", "bisection")


def evaluate(app, ranks, scramble=False):
    trace = generate_trace(app, ranks)
    matrix = matrix_from_trace(trace, include_collectives=False)
    if scramble:
        matrix = matrix.remapped(np.random.default_rng(0).permutation(ranks))
    topo = config_for(ranks).build_torus()
    out = {
        "consecutive": weighted_hop_cost(
            matrix, topo, Mapping.consecutive(ranks, topo.num_nodes)
        ),
        "random": weighted_hop_cost(
            matrix, topo, Mapping.random(ranks, topo.num_nodes, seed=1)
        ),
    }
    for method in METHODS:
        mapping = optimize_mapping(
            matrix, topo, method=method, refine=(method != "bisection")
        )
        out[method] = weighted_hop_cost(matrix, topo, mapping)
    return out


CASES = {
    "LULESH@64 (scrambled)": ("LULESH", 64, True),
    "MOCFE@64": ("MOCFE", 64, False),
    "AMR_Miniapp@64": ("AMR_Miniapp", 64, False),
    "Boxlib_MultiGrid_C@64": ("Boxlib_MultiGrid_C", 64, False),
    "FillBoundary@125": ("FillBoundary", 125, False),
}


@pytest.fixture(scope="module")
def results():
    return {label: evaluate(*args) for label, args in CASES.items()}


def test_ablation_mapping(benchmark, results):
    data = once(benchmark, lambda: results)
    header = (
        f"{'workload':<26} {'consec':>11} {'random':>11} "
        + " ".join(f"{m:>11}" for m in METHODS)
        + "  best/consec"
    )
    lines = [header]
    for label, costs in data.items():
        best = min(costs[m] for m in METHODS)
        ratio = best / costs["consecutive"] if costs["consecutive"] else 1.0
        cells = " ".join(f"{costs[m]:>11.3e}" for m in METHODS)
        lines.append(
            f"{label:<26} {costs['consecutive']:>11.3e} {costs['random']:>11.3e} "
            f"{cells}  {ratio:.2f}x"
        )
    write_output("ablation_mapping.txt", "\n".join(lines))


def test_optimized_beats_random_everywhere(results):
    for label, costs in results.items():
        best = min(costs[m] for m in METHODS)
        assert best < costs["random"], label


def test_unaligned_placement_has_big_headroom(results):
    """The paper's conjecture holds when rank numbering ignores locality."""
    costs = results["LULESH@64 (scrambled)"]
    best = min(costs[m] for m in METHODS)
    assert best < 0.8 * costs["consecutive"]


def test_scattered_apps_have_modest_headroom(results):
    costs = results["MOCFE@64"]
    best = min(costs[m] for m in METHODS)
    assert best < 0.95 * costs["consecutive"]


def test_morton_assignment_is_already_smart(results):
    """Boxlib's space-filling box assignment leaves optimizers little to
    gain — an important qualifier to the paper's conjecture."""
    for label in ("Boxlib_MultiGrid_C@64", "FillBoundary@125"):
        costs = results[label]
        best = min(costs[m] for m in METHODS)
        assert 0.75 * costs["consecutive"] < best < 1.35 * costs["consecutive"], label


def test_random_mapping_is_the_worst_case(results):
    for label, costs in results.items():
        assert costs["random"] >= 0.9 * costs["consecutive"], label
