"""Ablation: flat (paper §4.4) vs tree-based collective translation.

The paper flattens collectives to direct point-to-point messages with no
tree structure, arguing this "ensures that the network is maximally
utilized to give a stable estimate".  This ablation quantifies what the
assumption costs: binomial/recursive-doubling schedules move the same data
with fewer root-adjacent messages, so the flat model *overstates* hot-spot
load at the root while log-depth schedules spread it.
"""

import numpy as np
import pytest

from repro.apps.registry import generate_trace
from repro.collectives.translate import iter_send_groups
from repro.collectives.tree import expand_collective_tree
from repro.comm.matrix import CommMatrixBuilder, matrix_from_trace
from repro.core.events import CollectiveEvent
from repro.model.engine import analyze_network
from repro.model.linkload import link_load_stats
from repro.topology.configs import config_for

from _bench_utils import once, write_output


def matrix_with_tree_collectives(trace):
    """Traffic matrix with tree-based collective expansion."""
    builder = CommMatrixBuilder(trace.meta.num_ranks)
    for classified in iter_send_groups(trace, include_collectives=False):
        builder.add_group(classified.group)
    assert trace.communicators is not None
    for ev in trace.events:
        if isinstance(ev, CollectiveEvent):
            comm = trace.communicators.get(ev.comm)
            elem = trace.datatypes.size_of(ev.dtype)
            for group in expand_collective_tree(ev, comm, elem):
                builder.add_group(group)
    return builder.finalize()


def compare(app, ranks):
    trace = generate_trace(app, ranks)
    flat = matrix_from_trace(trace)
    tree = matrix_with_tree_collectives(trace)
    topo = config_for(ranks).build_torus()
    t = trace.meta.execution_time
    return {
        "flat": analyze_network(flat, topo, execution_time=t),
        "tree": analyze_network(tree, topo, execution_time=t),
        "flat_load": link_load_stats(flat, topo),
        "tree_load": link_load_stats(tree, topo),
    }


@pytest.fixture(scope="module")
def cmc_results():
    return compare("CMC_2D", 64)


def test_ablation_collectives(benchmark):
    results = once(benchmark, compare, "CMC_2D", 256)
    lines = ["CMC_2D@256 on its Table-2 torus", ""]
    for key in ("flat", "tree"):
        r = results[key]
        lines.append(
            f"{key:>5}: packet_hops={r.packet_hops:.3e} avg_hops={r.avg_hops:.2f} "
            f"messages={r.total_packets} used_links={r.used_links}"
        )
    for key in ("flat_load", "tree_load"):
        s = results[key]
        lines.append(
            f"{key:>10}: gini={s.gini:.3f} max/mean={s.max_over_mean:.1f}"
        )
    write_output("ablation_collectives.txt", "\n".join(lines))


def test_tree_reduces_rooted_hotspot(cmc_results):
    """Binomial schedules flatten the load distribution around the root."""
    assert cmc_results["tree_load"].max_over_mean < cmc_results[
        "flat_load"
    ].max_over_mean


def test_tree_reduces_messages_for_rooted_collectives(cmc_results):
    """Allreduce via reduce+bcast sends 2N messages; recursive doubling
    sends N*log2(N) — more messages but no 2N-deep root serialization.
    For the bcast/reduce parts of CMC the message count drops."""
    # total packets differ between the two models
    assert cmc_results["tree"].total_packets != cmc_results["flat"].total_packets


def test_volume_conserved_for_bcast_reduce():
    """Per-operation sanity: flat and tree bcast move identical volume."""
    from repro.core.communicator import Communicator
    from repro.collectives.patterns import expand_collective
    from repro.core.events import CollectiveOp

    comm = Communicator.world(16)
    for op in (CollectiveOp.REDUCE,):
        flat_total = tree_total = 0
        for caller in range(16):
            ev = CollectiveEvent(caller=caller, op=op, count=100)
            flat_total += sum(
                g.total_bytes for g in expand_collective(ev, comm, 1)
            )
            tree_total += sum(
                g.total_bytes for g in expand_collective_tree(ev, comm, 1)
            )
        # flat includes the root's zero-hop self-message; the tree does not
        assert tree_total == flat_total - 100
