"""Benchmarks: regenerate Figures 1, 3, 4, and 5.

Each figure's data series is rebuilt at full scale, written to
``benchmarks/output/``, and its published shape asserted.
"""

import numpy as np
import pytest

from repro.analysis.figures import (
    build_figure1,
    build_figure3,
    build_figure4,
    build_figure5,
    render_curves,
)

from _bench_utils import once, write_output


class TestFigure1:
    def test_build(self, benchmark):
        series = once(benchmark, build_figure1, "LULESH", 64, 0)
        lines = [f"# {series.app}@{series.ranks} rank {series.rank}"]
        for i, (v, c) in enumerate(
            zip(series.volumes, series.cumulative_share), start=1
        ):
            lines.append(f"{i:>4} {v:>14d} {c:.4f}")
        write_output("figure1.txt", "\n".join(lines))
        assert len(series.volumes) == 7

    def test_shape_matches_paper_illustration(self):
        """Figure 1: few dominant partners, long thin tail."""
        series = build_figure1("LULESH", 64, 0)
        cum = series.cumulative_share
        # the top 3 partners (faces) dominate rank 0's traffic
        assert cum[2] > 0.85
        assert series.volumes[0] > 10 * series.volumes[-1]


class TestFigure3:
    @pytest.fixture(scope="class")
    def curves(self):
        return build_figure3()

    def test_build(self, benchmark, curves):
        result = once(benchmark, lambda: curves)
        write_output("figure3.txt", render_curves(result))
        # every p2p configuration contributes one curve
        assert len(result) == 35

    def test_ninety_percent_mostly_under_ten_partners(self, curves):
        """Paper: '90% of the communication originates from only six or
        fewer ranks' for most workloads; only a handful exceed ten."""
        crossings = {c.label: c.partners_for_share(0.9) for c in curves}
        over_ten = [label for label, k in crossings.items() if k > 10]
        assert len(over_ten) <= len(crossings) * 0.25, over_ten

    def test_largest_config_bounded(self, curves):
        """Paper: even at 1728 ranks, 90% comes from <= ~13 partners."""
        big = [c for c in curves if c.ranks >= 1024]
        assert big
        for c in big:
            assert c.partners_for_share(0.9) <= 40, c.label

    def test_curves_monotone(self, curves):
        for c in curves:
            assert np.all(np.diff(c.curve) >= -1e-12), c.label


class TestFigure4:
    def test_build(self, benchmark):
        curves = once(benchmark, build_figure4, "AMG")
        write_output("figure4.txt", render_curves(curves))
        assert [c.ranks for c in curves] == [8, 27, 216, 1728]

    def test_curves_shift_right_with_scale(self):
        """Paper Figure 4: AMG's curve moves right as ranks grow, with the
        shift slowing down (saturation)."""
        curves = build_figure4("AMG")
        crossings = [c.partners_for_share(0.9) for c in curves]
        assert crossings == sorted(crossings)
        # saturation: the 216 -> 1728 step is no larger than 8 -> 27
        assert crossings[-1] - crossings[-2] <= max(crossings[1] - crossings[0], 3)


class TestFigure5:
    @pytest.fixture(scope="class")
    def series(self):
        return build_figure5()

    def test_build(self, benchmark, series):
        result = once(benchmark, lambda: series)
        lines = []
        for s in result:
            points = "  ".join(
                f"{p.cores_per_node}c:{p.relative_traffic:.3f}" for p in s.points
            )
            lines.append(f"{s.label:<24} {points}")
        write_output("figure5.txt", "\n".join(lines))
        # paper: all apps with >= 512-rank configurations
        assert {s.app for s in result} >= {
            "AMG", "AMR_Miniapp", "BigFFT", "Boxlib_CNS", "LULESH", "MiniFE",
        }

    def test_traffic_decreases_with_cores(self, series):
        for s in series:
            rel = s.relative
            assert rel[0] == 1.0
            assert rel[-1] <= rel[0], s.label

    def test_saturation_by_sixteen_cores(self, series):
        """Paper §6.1: all apps reach saturation at 8-16 cores/socket —
        scaling past 16 gains comparatively little."""
        ok = 0
        for s in series:
            rel = {p.cores_per_node: p.relative_traffic for p in s.points}
            drop_to_16 = rel[1] - rel[16]
            drop_after = rel[16] - rel[48]
            # small further decline, absolutely or relative to 1 -> 16
            if drop_after <= max(0.105, 0.75 * drop_to_16):
                ok += 1
        assert ok >= 0.75 * len(series)

    def test_substantial_traffic_remains(self, series):
        """Paper §7: even at 48 cores/socket a lot of inter-node traffic
        remains (motivating smarter mappings)."""
        remaining = [s.relative[-1] for s in series]
        assert np.mean(remaining) > 0.05
