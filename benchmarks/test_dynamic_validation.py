"""Benchmark: dynamic simulation vs the static model (paper §8 disclaimer).

The paper closes with two statements about its static model that only a
dynamic simulation can check:

1. "static analyses ... present an upper limit for the maximum utilization
   on a given topology" — dynamically, queueing spreads transmissions so
   links are never busier than the offered load allows;
2. low static utilization implies a low "probability of congestions"
   (§4.2.3) — the dynamic model measures congestion directly.

This benchmark runs the packet-level simulator on representative workloads
and checks both, plus the BigFFT counterexample where the offered load is
high enough for real queueing to appear.
"""

import pytest

from repro.apps.registry import generate_trace
from repro.comm.matrix import matrix_from_trace
from repro.model.engine import analyze_network
from repro.sim.engine import simulate_network
from repro.topology.configs import config_for

from _bench_utils import once, write_output

CASES = {
    "MiniFE@18": ("MiniFE", 18, 2.0),
    "LULESH@64": ("LULESH", 64, 8.0),
    "AMG@27": ("AMG", 27, 1.0),
    "MOCFE@64": ("MOCFE", 64, 1.0),
    "BigFFT@9": ("BigFFT", 9, 2.0),
    "BigFFT@100": ("BigFFT", 100, 80.0),
}


def run_case(app, ranks, scale):
    trace = generate_trace(app, ranks)
    matrix = matrix_from_trace(trace)
    topo = config_for(ranks).build_torus()
    t = trace.meta.execution_time
    static = analyze_network(matrix, topo, execution_time=t)
    # the simulator charges a full 4 kB slot per packet, so the matching
    # static capacity estimate is the padded-volume variant
    static_padded = analyze_network(
        matrix, topo, execution_time=t, volume_mode="padded"
    )
    dynamic = simulate_network(
        matrix, topo, execution_time=t, volume_scale=scale
    )
    return static, static_padded, dynamic


@pytest.fixture(scope="module")
def results():
    return {label: run_case(*args) for label, args in CASES.items()}


def test_dynamic_validation(benchmark, results):
    data = once(benchmark, lambda: results)
    lines = [
        f"{'workload':<14} {'static util%':>12} {'dyn util%':>10} "
        f"{'congested%':>11} {'inflation':>10} {'mean qdelay':>12}"
    ]
    for label, (static, _padded, dyn) in data.items():
        lines.append(
            f"{label:<14} {static.utilization_percent:>12.4f} "
            f"{100 * dyn.dynamic_utilization:>10.4f} "
            f"{100 * dyn.congested_packet_share:>11.2f} "
            f"{dyn.makespan_inflation:>10.3f} "
            f"{dyn.mean_queue_delay:>12.3e}"
        )
    write_output("dynamic_validation.txt", "\n".join(lines))


def test_idle_workloads_never_congest(results):
    """<1% static utilization -> essentially zero queueing (paper §8)."""
    for label, (static, _padded, dyn) in results.items():
        if static.utilization < 0.01:
            assert dyn.congested_packet_share < 0.02, label
            assert dyn.makespan_inflation < 1.05, label


def test_hot_workload_shows_real_queueing(results):
    """BigFFT@100 (static ~18%) is the configuration where dynamic effects
    appear: measurable congestion, yet the network still keeps up."""
    _, _, dyn = results["BigFFT@100"]
    assert dyn.congested_packet_share > 0.02
    assert dyn.mean_queue_delay > 0.0


def test_route_agreement(results):
    """Per-packet hop totals agree with the static Eq.-3 accounting when
    volume is unsampled."""
    static, _, dyn = results["MOCFE@64"]
    assert dyn.total_hops == static.packet_hops


def test_injected_load_never_exceeds_capacity_estimate(results):
    """Dynamic busy fraction stays below the padded static per-link offered
    load scaled by the hop average — the sense in which the static analysis
    bounds what links can be asked to do."""
    for label, (_, padded, dyn) in results.items():
        bound = padded.utilization * max(padded.avg_hops, 1.0) * 3.0
        assert dyn.dynamic_utilization <= max(bound, 0.001), label
