#!/usr/bin/env python
"""Smart mapping: the optimization the paper motivates (§7).

Scenario: a 3D stencil job lands on a torus with an arbitrary (scrambled)
rank-to-node placement — what a locality-oblivious batch scheduler would
do.  We then apply the library's optimized mappings (heavy-edge greedy,
Fiedler ordering on a snake curve, recursive spectral bisection) and
measure the recovered byte-weighted hops, packet hops, and the implied
interconnect energy.

Run:  python examples/mapping_optimization.py [APP] [RANKS]
"""

import sys

import numpy as np

import repro
from repro.mapping import Mapping, optimize_mapping, weighted_hop_cost
from repro.model import EnergyModel, analyze_network


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "LULESH"
    ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 64

    trace = repro.generate_trace(app, ranks)
    matrix = repro.matrix_from_trace(trace, include_collectives=False)
    # emulate a locality-oblivious scheduler: scramble the rank numbering
    scrambled = matrix.remapped(np.random.default_rng(7).permutation(ranks))
    topo = repro.config_for(ranks).build_torus()
    t = trace.meta.execution_time
    energy = EnergyModel(link_power_w=3.0)

    print(f"== {app}@{ranks} on {topo!r}, scrambled placement ==\n")
    print(
        f"{'mapping':<14} {'byte-hops':>12} {'vs base':>8} "
        f"{'packet hops':>12} {'avg hops':>9} {'energy [J]':>11}"
    )

    baseline = None
    candidates = ["consecutive", "random", "greedy", "spectral", "bisection"]
    for method in candidates:
        if method == "random":
            mapping = Mapping.random(ranks, topo.num_nodes, seed=3)
        else:
            mapping = optimize_mapping(
                scrambled, topo, method=method, refine=(method in ("greedy", "spectral"))
            )
        cost = weighted_hop_cost(scrambled, topo, mapping)
        if baseline is None:
            baseline = cost
        result = analyze_network(scrambled, topo, mapping=mapping, execution_time=t)
        report = energy.report(result)
        print(
            f"{method:<14} {cost:>12.3e} {cost / baseline:>7.2f}x "
            f"{result.packet_hops:>12.3e} {result.avg_hops:>9.2f} "
            f"{report.total_energy_j:>11.1f}"
        )

    print(
        "\nEvery hop a packet does not travel is latency and SerDes energy"
        "\nsaved; the paper argues exactly this headroom exists because 90%"
        "\nof each rank's traffic goes to a handful of partners (selectivity)."
    )


if __name__ == "__main__":
    main()
