#!/usr/bin/env python
"""Routing policy comparison: minimal vs ECMP vs Valiant vs UGAL.

The paper's §7 notes that adaptive routing changes the locality picture on
indirect topologies.  This example makes that concrete on a dragonfly
under the classic adversarial workload — every node of one group talking
to the next group — where minimal routing funnels all traffic through the
single inter-group global link:

1. static link-load distribution per policy (the quantity Eq. 5 digests);
2. hop-count cost of the congestion-proof detours;
3. the dynamic consequence: simulated queueing under each policy.

Run:  python examples/routing_comparison.py
"""

import numpy as np

from repro.comm import CommMatrixBuilder
from repro.routing import ROUTINGS, get_policy
from repro.sim import simulate_network
from repro.topology.dragonfly import Dragonfly


def adversarial_matrix(topology: Dragonfly):
    """Every node of group 0 sends one message to its peer in group 1."""
    per_group = topology.num_nodes // topology.num_groups
    builder = CommMatrixBuilder(topology.num_nodes)
    for i in range(per_group):
        for j in range(per_group):
            builder.add_message(i, per_group + j, 64 * 4096)
    return builder.finalize()


def main() -> None:
    topology = Dragonfly(8, 4, 4)
    matrix = adversarial_matrix(topology)
    src, dst = matrix.src, matrix.dst
    weights = matrix.nbytes.astype(np.float64)

    print(f"adversarial group-0 -> group-1 traffic on {topology!r}")
    print(f"{len(src)} pairs, {weights.sum() / 1e6:.1f} MB total\n")

    print(
        f"{'policy':<10} {'mean hops':>10} {'max load MB':>12} "
        f"{'p99 load MB':>12} {'used links':>11} {'sim makespan':>13}"
    )
    print("-" * 73)
    for name in ROUTINGS:
        policy = get_policy(name, seed=0)
        inc = policy.route_incidence(topology, src, dst, pair_weights=weights)
        hops = np.bincount(inc.pair_index, minlength=len(src))
        _, loads = inc.link_loads(weights)
        sim = simulate_network(
            matrix,
            topology,
            execution_time=5e-4,
            routing=name,
            routing_seed=0,
        )
        print(
            f"{name:<10} {hops.mean():>10.2f} {loads.max() / 1e6:>12.2f} "
            f"{np.percentile(loads, 99) / 1e6:>12.2f} {len(loads):>11} "
            f"{sim.makespan * 1e3:>11.2f}ms"
        )

    print(
        "\nminimal/ecmp/dmodk collapse onto the one global link between the"
        "\ntwo groups (dragonfly shortest paths are unique); valiant spreads"
        "\nthe load across all intermediate groups at ~2x the hops; ugal"
        "\npays the detour only where the load advantage justifies it."
    )


if __name__ == "__main__":
    main()
