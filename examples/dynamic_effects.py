#!/usr/bin/env python
"""Dynamic effects: the paper's future work, run against its static model.

The paper's closing disclaimer: "this study is solely based on a static
analysis of traffic patterns ... it seems very promising to address dynamic
effects in future work."  This example does exactly that with the packet-
level simulator: for a quiet workload (LULESH) and the one hot workload
(BigFFT), it compares the static Eq.-5 utilization against dynamically
measured link business, queueing, and congestion — and shows why the
paper's "<1% utilization means congestion is improbable" reading holds.

A second part turns the simulator into an observable system with the
telemetry layer (docs/telemetry.md): an adversarial dragonfly workload —
all of group 0 talking to group 1 — is run under minimal and UGAL
routing, and the windowed congestion timeline shows minimal saturating
the single g0-g1 global link for most of the run while adaptive routing
never forms a hot region at all.

Run:  python examples/dynamic_effects.py
"""

import repro
from repro.model import analyze_network
from repro.sim import simulate_network
from repro.telemetry import (
    TelemetryConfig,
    adversarial_hot_group_matrix,
    congestion_summary,
    render_congestion_timeline,
)
from repro.topology import Dragonfly

CASES = [
    ("LULESH", 64, 8.0),  # quiet: static utilization ~0.005%
    ("MOCFE", 64, 1.0),  # collective-heavy but still quiet
    ("BigFFT", 9, 2.0),  # warm
    ("BigFFT", 100, 80.0),  # hot: the only >1% app in the study
]


def main() -> None:
    print(
        f"{'workload':<14} {'static%':>9} {'dynamic%':>9} {'congested%':>11} "
        f"{'q-delay':>10} {'inflation':>10}"
    )
    print("-" * 68)
    for app, ranks, scale in CASES:
        trace = repro.generate_trace(app, ranks)
        matrix = repro.matrix_from_trace(trace)
        topo = repro.config_for(ranks).build_torus()
        t = trace.meta.execution_time
        static = analyze_network(matrix, topo, execution_time=t)
        dyn = simulate_network(matrix, topo, execution_time=t, volume_scale=scale)
        print(
            f"{app + '@' + str(ranks):<14} {static.utilization_percent:>9.4f} "
            f"{100 * dyn.dynamic_utilization:>9.4f} "
            f"{100 * dyn.congested_packet_share:>11.2f} "
            f"{dyn.mean_queue_delay:>10.2e} {dyn.makespan_inflation:>10.3f}"
        )

    print(
        "\nReading: below 1% static utilization, packets essentially never"
        "\nqueue — the static model is a faithful congestion predictor there."
        "\nBigFFT@100 is where flow interaction becomes real: most packets"
        "\nqueue behind another at least once, yet the network still drains"
        "\nwithin the execution window (inflation ~1.0): the paper's 'upper"
        "\nlimit' reading of static utilization survives the dynamic test."
    )

    congestion_timeline_demo()


def congestion_timeline_demo() -> None:
    """Adversarial dragonfly traffic: minimal vs UGAL, window by window."""
    topo = Dragonfly(a=4, h=2, p=2)
    matrix = adversarial_hot_group_matrix(topo, packets_per_pair=40)
    print("\n\nCongestion timelines: group 0 floods group 1 on", topo)
    for routing in ("minimal", "ugal"):
        result = simulate_network(
            matrix, topo, execution_time=2e-3, routing=routing,
            telemetry=TelemetryConfig(windows=24),
        )
        summary = congestion_summary(result.telemetry, topo, threshold=0.4)
        print(f"\n--- routing={routing} ---")
        print(render_congestion_timeline(result.telemetry, topo, threshold=0.4))
        print(
            f"regions={summary.num_regions}  hot_windows={summary.hot_windows}"
            f"  longest={summary.longest_region_s:.2e}s"
            f"  inflation={result.makespan_inflation:.3f}"
        )

    print(
        "\nReading: minimal routing funnels every flow through the single"
        "\ng0-g1 global link, which saturates and stays hot for most of the"
        "\nrun; UGAL detours around it and never forms a hot region — the"
        "\nadaptive-routing story, visible window by window."
    )


if __name__ == "__main__":
    main()
