#!/usr/bin/env python
"""Trace pipeline: generate → serialize → repository → parse → analyze.

Demonstrates that the analysis genuinely runs from serialized repro-dumpi
traces, mirroring the paper's workflow against the Sandia trace portal:
a repository directory is populated with trace files, then every analysis
reads from disk.

Run:  python examples/trace_pipeline.py [DIR]
"""

import sys
import tempfile
from pathlib import Path

import repro
from repro.dumpi import TraceKey, TraceRepository

WORKLOADS = [("MiniFE", 18), ("CrystalRouter", 10), ("AMG", 27)]


def main() -> None:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-traces-")
    )
    repo = TraceRepository(root)
    print(f"repository: {repo.root}\n")

    # populate: generate once, cache as repro-dumpi ASCII files
    for app, ranks in WORKLOADS:
        repo.ensure(app, ranks)
        path = repo.path_of(TraceKey(app, ranks))
        size_kb = path.stat().st_size / 1024
        print(f"wrote {path.name:<28} ({size_kb:8.1f} KiB)")

    print("\nrepository index:")
    for key in repo.keys():
        print(f"  {key.app}@{key.ranks}" + (f"/{key.variant}" if key.variant else ""))

    # analyze from disk: parse each file and run the MPI-level metrics
    print(f"\n{'workload':<20} {'records':>8} {'peers':>6} {'dist90':>8} {'sel90':>6}")
    for key in repo.keys():
        trace = repo.load(key)
        matrix = repro.matrix_from_trace(trace, include_collectives=False)
        m = repro.mpi_level_metrics(trace, matrix)
        print(
            f"{m.label:<20} {len(trace):>8} {m.peers:>6} "
            f"{m.rank_distance_90:>8.1f} {m.selectivity_90:>6.1f}"
        )

    print("\n(first lines of one trace file)")
    sample = repo.path_of(TraceKey(*WORKLOADS[0]))
    for line in sample.read_text().splitlines()[:8]:
        print("  " + line)


if __name__ == "__main__":
    main()
