#!/usr/bin/env python
"""Network provisioning and energy: the paper's §6.3/§7 argument, quantified.

For each workload, computes network utilization on its best-fit topology
and translates the idle share into energy numbers with the SerDes-dominated
power model (85% SerDes / 15% logic, Zahn et al. [19]): how much energy
idle links burn, what power gating could reclaim, and what running the
network at a bandwidth matched to the offered load would save.

Run:  python examples/energy_provisioning.py [--max-ranks N]
"""

import argparse

import repro
from repro.model import EnergyModel, analyze_network


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-ranks", type=int, default=128)
    args = parser.parse_args()

    model = EnergyModel(link_power_w=3.0)
    print(
        f"{'workload':<22} {'util %':>9} {'links':>6} {'total J':>10} "
        f"{'useful %':>9} {'gating J':>9} {'bw-scale J':>10}"
    )
    print("-" * 82)

    for app, point in repro.iter_configurations(max_ranks=args.max_ranks):
        if point.variant:
            continue
        trace = app.generate(point.ranks, variant=point.variant)
        matrix = repro.matrix_from_trace(trace)
        topo = repro.config_for(point.ranks).build_torus()
        result = analyze_network(
            matrix, topo, execution_time=trace.meta.execution_time
        )
        report = model.report(result)
        print(
            f"{app.name + '@' + str(point.ranks):<22} "
            f"{result.utilization_percent:>9.4f} {result.used_links:>6} "
            f"{report.total_energy_j:>10.2f} "
            f"{100 * report.useful_fraction:>9.4f} "
            f"{report.gating_savings_j:>9.2f} "
            f"{report.frequency_scaling_savings_j:>10.2f}"
        )

    print(
        "\nReading: with <1% utilization almost everywhere (paper §6.3),"
        "\nnearly all interconnect energy heats idle SerDes.  Power gating"
        "\nreclaims up to 85% of the idle share; matching link bandwidth to"
        "\nthe offered load (frequency scaling, power ~ bandwidth^2) removes"
        "\nnearly everything — the paper's closing argument."
    )


if __name__ == "__main__":
    main()
