#!/usr/bin/env python
"""Topology selection study: which network fits which workload class?

The paper's §6.2 exercise, as a system architect would run it: for each
application class, sweep its configurations over torus / fat tree /
dragonfly and report the winner by average hop count, plus the dragonfly's
global-link dependence.  Reproduces the paper's conclusions — torus for
small 3D workloads, fat tree at scale, dragonfly rarely ahead.

Run:  python examples/topology_selection.py [--max-ranks N]
"""

import argparse

import repro
from repro.analysis import build_table3


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-ranks", type=int, default=256)
    args = parser.parse_args()

    rows = build_table3(max_ranks=args.max_ranks)

    print(
        f"{'workload':<28} {'torus':>7} {'ftree':>7} {'dfly':>7}   "
        f"{'winner':<10} {'dfly global %':>13}"
    )
    print("-" * 80)
    wins = {"torus3d": 0, "fattree": 0, "dragonfly": 0}
    for row in rows:
        hops = {k: n.avg_hops for k, n in row.network.items()}
        best = min(hops, key=hops.get)  # type: ignore[arg-type]
        wins[best] += 1
        global_share = row.network["dragonfly"].global_link_packet_share or 0.0
        print(
            f"{row.label:<28} {hops['torus3d']:>7.2f} {hops['fattree']:>7.2f} "
            f"{hops['dragonfly']:>7.2f}   {best:<10} {100 * global_share:>12.1f}%"
        )

    print("-" * 80)
    total = sum(wins.values())
    for kind, count in wins.items():
        print(f"{kind:<10} wins {count:>3}/{total}")

    print(
        "\nPaper's conclusion (§8): the 3D torus suits small (< ~100-256 rank)"
        "\n3D-structured workloads; at larger scale the lower diameter of the"
        "\nfat tree takes over; the standard dragonfly rarely wins because its"
        "\nsmall groups force most traffic across global links."
    )


if __name__ == "__main__":
    main()
