#!/usr/bin/env python
"""Quickstart: the full analysis pipeline on one workload.

Generates the LULESH@64 synthetic trace, computes the paper's MPI-level
locality metrics (peers, rank distance, selectivity, dimensionality), and
runs the static network model on the three Table-2 topologies.

Run:  python examples/quickstart.py [APP] [RANKS]
"""

import sys

import repro


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "LULESH"
    ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 64

    # 1. Generate a calibrated synthetic trace (stand-in for a dumpi trace).
    trace = repro.generate_trace(app, ranks)
    stats = repro.trace_stats(trace)
    print(f"== {stats.label} ==")
    print(
        f"volume {stats.total_mb:.1f} MB over {stats.execution_time:.3f} s "
        f"({stats.throughput_mb_per_s:.1f} MB/s), "
        f"p2p {100 * stats.p2p_share:.1f}% / coll {100 * stats.collective_share:.1f}%"
    )

    # 2. MPI-level locality metrics (paper §5) on point-to-point traffic.
    p2p = repro.matrix_from_trace(trace, include_collectives=False)
    metrics = repro.mpi_level_metrics(trace, p2p)
    print("\n-- MPI-level metrics (hardware-agnostic) --")
    if metrics.has_p2p:
        print(f"peers:               {metrics.peers}")
        print(f"rank distance (90%): {metrics.rank_distance_90:.1f}")
        print(f"rank locality:       {100 * metrics.rank_locality_90:.1f}%")
        print(f"selectivity (90%):   {metrics.selectivity_90:.1f}")
        locality = repro.locality_by_dimension(p2p)
        cells = "  ".join(f"{d}D: {100 * v:.0f}%" for d, v in locality.items())
        print(f"dimensionality:      {cells}")
    else:
        print("all-collective workload: peers/distance/selectivity are N/A")

    # 3. System-level analysis (paper §6) on the three Table-2 topologies.
    full = repro.matrix_from_trace(trace)  # collectives flattened per §4.4
    print("\n-- Topology comparison (consecutive mapping) --")
    print(f"{'topology':<22} {'packet hops':>12} {'avg hops':>9} {'util %':>9}")
    for name, topo in repro.build_all(ranks).items():
        result = repro.analyze_network(
            full, topo, execution_time=trace.meta.execution_time
        )
        print(
            f"{name:<22} {result.packet_hops:>12.3e} {result.avg_hops:>9.2f} "
            f"{result.utilization_percent:>9.4f}"
        )


if __name__ == "__main__":
    main()
