#!/usr/bin/env python
"""Custom study: your own grid, beyond the paper's fixed evaluation.

A downstream user's workflow: pick workloads, cross them against topology /
mapping / MTU axes with the sweep harness, and export tidy CSV for external
plotting.  The example asks a question the paper leaves open — *where
does optimized mapping actually help, per topology?*  (Spoiler from the
guarded optimizer: aligned stencils are already optimal on the torus, so
the guard returns the baseline there; the gains appear for scattered apps
and on the indirect topologies.)

Run:  python examples/custom_study.py [out.csv]
"""

import sys

from repro.analysis.export import rows_to_csv
from repro.analysis.sweep import SweepSpec, run_sweep


def main() -> None:
    spec = SweepSpec(
        apps=(("LULESH", 64), ("AMG", 216), ("MOCFE", 64)),
        topologies=("torus3d", "fattree", "dragonfly"),
        mappings=("consecutive", "bisection"),
        # the sweep harness uses the raw optimizer; the guarded variant is
        # demonstrated below via optimize_mapping(fallback=True)
        payloads=(4096,),
    )
    print(f"running {spec.num_points} sweep points ...\n")
    records = run_sweep(spec)

    # pivot: per workload/topology, consecutive vs bisection avg hops
    print(
        f"{'workload':<14} {'topology':<11} {'consec hops':>12} "
        f"{'bisect hops':>12} {'gain':>7}"
    )
    print("-" * 60)
    by_key = {
        (r["app"], r["ranks"], r["topology"], r["mapping"]): r for r in records
    }
    for app, ranks in spec.apps:
        for topo in spec.topologies:
            consec = by_key[(app, ranks, topo, "consecutive")]["avg_hops"]
            bisect = by_key[(app, ranks, topo, "bisection")]["avg_hops"]
            gain = 100 * (1 - bisect / consec) if consec else 0.0
            print(
                f"{app + '@' + str(ranks):<14} {topo:<11} {consec:>12.2f} "
                f"{bisect:>12.2f} {gain:>6.1f}%"
            )

    # the guarded optimizer: safe to apply blindly — aligned workloads keep
    # their (already optimal) consecutive placement
    from repro.apps.registry import generate_trace
    from repro.comm.matrix import matrix_from_trace
    from repro.mapping import Mapping, optimize_mapping, weighted_hop_cost
    from repro.topology.configs import config_for

    print("\nguarded optimizer (fallback=True), torus:")
    for app, ranks in spec.apps:
        matrix = matrix_from_trace(
            generate_trace(app, ranks), include_collectives=False
        )
        topo = config_for(ranks).build_torus()
        base = weighted_hop_cost(
            matrix, topo, Mapping.consecutive(ranks, topo.num_nodes)
        )
        guarded = optimize_mapping(
            matrix, topo, method="bisection", fallback=True
        )
        cost = weighted_hop_cost(matrix, topo, guarded)
        verdict = "kept baseline" if cost >= base else f"{cost / base:.2f}x"
        print(f"  {app + '@' + str(ranks):<14} {verdict}")

    if len(sys.argv) > 1:
        path = sys.argv[1]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(rows_to_csv(records))
        print(f"\nwrote {len(records)} records to {path}")
    else:
        print("\n(pass a filename to export the raw records as CSV)")


if __name__ == "__main__":
    main()
